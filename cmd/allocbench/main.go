// Command allocbench measures the Go-heap allocation cost of the write
// path — the metric the pid-local magazine allocator (ftree.Arena) is
// built to drive to zero — and emits a machine-readable BENCH_alloc/v1
// report for cmd/benchdiff and CI's artifact trail.
//
// Three paths are measured, each with recycling on (the default: arenas +
// global free lists) and off (the NoRecycle ablation: every node fresh
// from the Go heap):
//
//	point-update   one overwriting Insert per op on a leased core handle,
//	               tree size steady — warm magazines make this 0 B/op
//	point-update-db the same through the sharded DB front door (WithCached)
//	batch-commit   one combining-writer commit of an n-entry batch per op
//	scan-warm      one 100-entry cross-shard merged scan per op on a pinned
//	               snapshot, results appended into a reused buffer — pooled
//	               iterators and the value-typed loser tree make this 0 B/op
//	               (recycling doesn't affect the read path; both cells
//	               should read identically)
//
// Usage:
//
//	allocbench -records 100000 -batch 1000 -json BENCH_alloc.json
//
// Cells are printed to stdout either way; -json also writes the report.
package main

import (
	"flag"
	"fmt"
	"os"
	"testing"

	"mvgc"
	"mvgc/internal/bench"
	"mvgc/internal/core"
	"mvgc/internal/ftree"
	"mvgc/internal/shard"
	"mvgc/internal/ycsb"
)

// openDB opens the sharded DB the point-update-db cell routes through.
// Shard count doesn't affect B/op (each shard's magazines recycle the same
// way); it's a flag so CI can pin it and humans can match their ycsb runs.
func openDB(records uint64, shards, procs int, noRecycle bool) (*mvgc.DB[uint64, uint64, struct{}], error) {
	return mvgc.OpenPlainDB[uint64, uint64](
		mvgc.DBOptions[uint64]{Shards: shards, Procs: procs, NoRecycle: noRecycle}, initial(records))
}

func main() {
	var (
		records  = flag.Uint64("records", 100_000, "keys preloaded into every structure")
		batch    = flag.Int("batch", 1000, "entries per batch-commit operation")
		shards   = bench.ShardsFlag("shard count for the point-update-db cell")
		procs    = flag.Int("procs", 4, "process count P per map")
		jsonPath = flag.String("json", "", "write a BENCH_alloc/v1 report to this file")
	)
	flag.Parse()

	rep := &bench.AllocReport{Records: *records, BatchSize: *batch, Procs: *procs}
	for _, recycle := range []bool{true, false} {
		rep.Results = append(rep.Results,
			cell("point-update", recycle, benchPointUpdate(*records, *procs, !recycle)),
			cell("point-update-db", recycle, benchPointUpdateDB(*records, *shards, *procs, !recycle)),
			cell("batch-commit", recycle, benchBatchCommit(*records, *batch, *procs, !recycle)),
			cell("scan-warm", recycle, benchScanWarm(*records, *shards, *procs, !recycle)),
		)
	}
	for _, r := range rep.Results {
		fmt.Printf("%-16s recycle=%-5v %8d B/op %6d allocs/op %12.0f ns/op\n",
			r.Path, r.Recycle, r.BPerOp, r.AllocsPerOp, r.NsPerOp)
	}
	if *jsonPath != "" {
		f, err := os.Create(*jsonPath)
		if err != nil {
			fmt.Fprintln(os.Stderr, "allocbench:", err)
			os.Exit(1)
		}
		if err := rep.WriteJSON(f); err != nil {
			fmt.Fprintln(os.Stderr, "allocbench:", err)
			os.Exit(1)
		}
		f.Close()
	}
}

func cell(path string, recycle bool, r testing.BenchmarkResult) bench.AllocRecord {
	return bench.AllocRecord{
		Path:        path,
		Recycle:     recycle,
		BPerOp:      r.AllocedBytesPerOp(),
		AllocsPerOp: r.AllocsPerOp(),
		NsPerOp:     float64(r.NsPerOp()),
	}
}

func initial(records uint64) []ftree.Entry[uint64, uint64] {
	out := make([]ftree.Entry[uint64, uint64], records)
	for i := range out {
		out[i] = ftree.Entry[uint64, uint64]{Key: uint64(i), Val: uint64(i)}
	}
	return out
}

// benchPointUpdate measures the canonical steady-state write: overwriting
// inserts through one leased handle, so the tree's size (and the arena's
// working set) is constant after the first pass.
func benchPointUpdate(records uint64, procs int, noRecycle bool) testing.BenchmarkResult {
	ops := ftree.New[uint64, uint64, struct{}](ftree.IntCmp[uint64], ftree.NoAug[uint64, uint64](), 0)
	m, err := core.NewMap(core.Config{Procs: procs, NoRecycle: noRecycle}, ops, initial(records))
	if err != nil {
		fmt.Fprintln(os.Stderr, "allocbench:", err)
		os.Exit(1)
	}
	defer m.Close()
	h := m.Handle()
	defer h.Close()
	rng := ycsb.NewSplitMix64(1)
	var k, v uint64
	f := func(tx *core.Txn[uint64, uint64, struct{}]) { tx.Insert(k, v) }
	// Warm the magazines (and the VM's steady state) before measuring.
	for i := 0; i < 10_000; i++ {
		k, v = rng.Next()%records, uint64(i)
		h.Update(f)
	}
	return testing.Benchmark(func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			k, v = rng.Next()%records, uint64(i)
			h.Update(f)
		}
	})
}

// benchPointUpdateDB measures the same write through the pid-free sharded
// front door: hash the key, take a cached lease, commit.
func benchPointUpdateDB(records uint64, shards, procs int, noRecycle bool) testing.BenchmarkResult {
	db, err := openDB(records, shards, procs, noRecycle)
	if err != nil {
		fmt.Fprintln(os.Stderr, "allocbench:", err)
		os.Exit(1)
	}
	defer db.Close()
	rng := ycsb.NewSplitMix64(2)
	for i := 0; i < 10_000; i++ {
		db.Insert(rng.Next()%records, uint64(i))
	}
	return testing.Benchmark(func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			db.Insert(rng.Next()%records, uint64(i))
		}
	})
}

// benchBatchCommit measures one combining-writer commit of a batch-sized
// multi-insert per op, the Appendix F write path.
func benchBatchCommit(records uint64, batchN, procs int, noRecycle bool) testing.BenchmarkResult {
	ops := ftree.New[uint64, uint64, struct{}](ftree.IntCmp[uint64], ftree.NoAug[uint64, uint64](), 2048)
	m, err := core.NewMap(core.Config{Procs: procs, NoRecycle: noRecycle}, ops, initial(records))
	if err != nil {
		fmt.Fprintln(os.Stderr, "allocbench:", err)
		os.Exit(1)
	}
	defer m.Close()
	w := m.Handle()
	defer w.Close()
	rng := ycsb.NewSplitMix64(3)
	entries := make([]ftree.Entry[uint64, uint64], batchN)
	fill := func() {
		for i := range entries {
			entries[i] = ftree.Entry[uint64, uint64]{Key: rng.Next() % records, Val: uint64(i)}
		}
	}
	commit := func() {
		// MultiInsert self-reserves, so this is the default InsertBatch
		// path a non-combining caller gets.
		w.Update(func(tx *core.Txn[uint64, uint64, struct{}]) {
			tx.InsertBatch(entries, nil)
		})
	}
	for i := 0; i < 5; i++ {
		fill()
		commit()
	}
	return testing.Benchmark(func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			b.StopTimer()
			fill()
			b.StartTimer()
			commit()
		}
	})
}

// benchScanWarm measures the steady-state ordered-read path: a 100-entry
// cross-shard scan per op, streamed through the pooled loser-tree merge
// into a reused append buffer.  The snapshot is pinned once outside the
// timed loop — pinning allocates the per-view shard-snapshot slice, but a
// server scanning under one long-lived consistent cut (or many scans per
// pin) amortizes that to nothing, and this cell isolates the per-scan
// cost, which must be 0 B/op.
func benchScanWarm(records uint64, shards, procs int, noRecycle bool) testing.BenchmarkResult {
	sm, err := shard.New(
		shard.Config[uint64]{Shards: shards, Procs: procs, Hash: ycsb.Mix64, NoRecycle: noRecycle},
		func() *ftree.Ops[uint64, uint64, struct{}] {
			return ftree.New[uint64, uint64, struct{}](ftree.IntCmp[uint64], ftree.NoAug[uint64, uint64](), 0)
		},
		initial(records),
	)
	if err != nil {
		fmt.Fprintln(os.Stderr, "allocbench:", err)
		os.Exit(1)
	}
	defer sm.Close()
	rng := ycsb.NewSplitMix64(4)
	var buf []ftree.Entry[uint64, uint64]
	// Warm the scan-state pool (iterator stacks, tree slice) and the
	// append buffer before measuring.
	sm.View(func(s shard.Snap[uint64, uint64, struct{}]) {
		for i := 0; i < 1000; i++ {
			buf = s.ScanAppend(buf[:0], rng.Next()%records, 100)
		}
	})
	return testing.Benchmark(func(b *testing.B) {
		b.ReportAllocs()
		sm.View(func(s shard.Snap[uint64, uint64, struct{}]) {
			for i := 0; i < b.N; i++ {
				buf = s.ScanAppend(buf[:0], rng.Next()%records, 100)
			}
		})
	})
}

// Command ycsbbench regenerates Figure 7: YCSB workloads A (50/50 read/
// update), B (95/5) and C (read-only) over the batched functional tree
// ("ours"), its hash-sharded scale-out ("ours-sharded", S independent map
// instances each with its own combining writer) and the concurrent
// baselines (skip list, non-blocking external BST, B+tree, striped hash
// map).  -scan adds workload E (95% short scans of uniform length 1–100,
// 5% inserts): on ours-sharded every scan streams a consistent GSN cut
// through the pooled loser-tree merge, and on the point baselines a scan
// degrades to consecutive point reads.
//
// Usage:
//
//	ycsbbench                         # all structures, workloads A/B/C
//	ycsbbench -records 50000000       # the paper's key-space size
//	ycsbbench -structures ours,ours-sharded -shards 8 -dur 10s
//	ycsbbench -txn -txnkeys 4         # add multi-key transfer cells (atomic, per-shard, validated OCC)
//	ycsbbench -scan                   # add workload E scan cells
//	ycsbbench -wal -walfsync always   # add ours-sharded durability-tax cells
//	ycsbbench -json BENCH_ycsb.json   # machine-readable results
//
// -longreader switches to the space experiment instead of Figure 7: one
// read transaction pins a snapshot while writers commit a fixed-size
// update storm, comparing peak retained versions, peak heap and write
// throughput across GC algorithms (sbgc/epoch/hp/pswf); -memjson writes
// the BENCH_mem/v1 document:
//
//	ycsbbench -longreader -memjson BENCH_mem.json
//	ycsbbench -longreader -lrwriters 8 -lrops 500000 -lrrecords 100000
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"strings"
	"time"

	"mvgc/internal/bench"
	"mvgc/internal/experiments"
	"mvgc/internal/ycsb"
)

func main() {
	var (
		records    = flag.Uint64("records", 1_000_000, "loaded key count (paper: 5e7)")
		threads    = flag.Int("threads", 0, "client threads (default GOMAXPROCS)")
		shards     = bench.ShardsFlag("shard count for ours-sharded")
		dur        = flag.Duration("dur", 3*time.Second, "measured duration per cell")
		latency    = flag.Duration("latency", 50*time.Millisecond, "batched update latency bound (paper: 50ms)")
		structures = flag.String("structures", "", "comma-separated structures (default ours,ours-sharded,skiplist,lfbst,bptree,hashmap)")
		jsonPath   = flag.String("json", "", "also write machine-readable results (BENCH_ycsb.json schema) to this path")
		txn        = flag.Bool("txn", false, "also run the multi-key transfer workload (UpdateAtomic vs per-shard Update)")
		txnKeys    = flag.Int("txnkeys", 2, "keys touched per transfer transaction (with -txn)")
		scan       = flag.Bool("scan", false, "also run YCSB workload E (95% short scans / 5% inserts)")
		walOn      = flag.Bool("wal", false, "also run ours-sharded with a write-ahead log attached (durability tax cells)")
		walFsync   = flag.String("walfsync", "always", "WAL fsync policy for -wal cells: always, interval or off")
		longReader = flag.Bool("longreader", false, "run the long-reader write-storm space experiment instead of Figure 7")
		lrWriters  = flag.Int("lrwriters", 0, "writer processes for -longreader (default GOMAXPROCS-1, capped at 8)")
		lrOps      = flag.Int("lrops", 0, "committed updates per writer for -longreader (default 200000)")
		lrRecords  = flag.Uint64("lrrecords", 0, "loaded key count for -longreader (default 100000)")
		lrAlgs     = flag.String("lralgs", "", "comma-separated GC algorithms for -longreader (default sbgc,epoch,hp,pswf)")
		memJSON    = flag.String("memjson", "", "with -longreader, also write machine-readable results (BENCH_mem.json schema) to this path")
	)
	flag.Parse()

	if *longReader {
		lcfg := experiments.DefaultLongReader()
		if *lrWriters > 0 {
			lcfg.Writers = *lrWriters
		}
		if *lrOps > 0 {
			lcfg.OpsPerWriter = *lrOps
		}
		if *lrRecords > 0 {
			lcfg.Records = *lrRecords
		}
		if *lrAlgs != "" {
			lcfg.Algorithms = strings.Split(*lrAlgs, ",")
		}
		results := experiments.RunLongReader(lcfg, os.Stdout)
		if *memJSON != "" {
			report := bench.MemReport{
				Records:      lcfg.Records,
				Writers:      lcfg.Writers,
				OpsPerWriter: lcfg.OpsPerWriter,
				Results:      results,
			}
			writeReport(*memJSON, report.WriteJSON)
		}
		return
	}

	cfg := experiments.DefaultFigure7()
	cfg.Records = *records
	cfg.Shards = *shards
	cfg.Duration = *dur
	cfg.MaxLatency = *latency
	if *threads > 0 {
		cfg.Threads = *threads
	}
	if *structures != "" {
		cfg.Structures = strings.Split(*structures, ",")
	}
	if *scan {
		cfg.Workloads = append(cfg.Workloads, ycsb.WorkloadE)
	}
	results := experiments.RunFigure7(cfg, os.Stdout)

	if *walOn {
		// The same sharded structure with every batch commit logged and
		// fsynced: the delta against the plain ours-sharded cells is the
		// durability tax.  Records carry "wal": true, so pre-WAL baseline
		// keys are untouched and benchdiff treats these as new cells on
		// first appearance.
		wcfg := cfg
		wcfg.WAL = true
		wcfg.WALFsync = *walFsync
		wcfg.Structures = []string{"ours-sharded"}
		results = append(results, experiments.RunFigure7(wcfg, os.Stdout)...)
	}

	if *txn {
		tcfg := experiments.DefaultTxn()
		tcfg.Accounts = cfg.Records
		tcfg.Threads = cfg.Threads
		tcfg.Shards = cfg.Shards
		tcfg.Duration = cfg.Duration
		tcfg.KeysPerTxn = *txnKeys
		results = append(results, experiments.RunTxn(tcfg, os.Stdout)...)
	}

	if *jsonPath != "" {
		report := bench.YCSBReport{
			Threads:     cfg.Threads,
			Shards:      cfg.Shards,
			Records:     cfg.Records,
			DurationSec: cfg.Duration.Seconds(),
			Results:     results,
		}
		writeReport(*jsonPath, report.WriteJSON)
	}
}

// writeReport writes one machine-readable document to path, exiting on any
// I/O failure so CI never uploads a truncated artifact.
func writeReport(path string, write func(io.Writer) error) {
	f, err := os.Create(path)
	if err != nil {
		fmt.Fprintln(os.Stderr, "ycsbbench:", err)
		os.Exit(1)
	}
	if err := write(f); err != nil {
		fmt.Fprintln(os.Stderr, "ycsbbench:", err)
		os.Exit(1)
	}
	if err := f.Close(); err != nil {
		fmt.Fprintln(os.Stderr, "ycsbbench:", err)
		os.Exit(1)
	}
	fmt.Println("wrote", path)
}

// Command ycsbbench regenerates Figure 7: YCSB workloads A (50/50 read/
// update), B (95/5) and C (read-only) over the batched functional tree
// ("ours") and the concurrent baselines (skip list, non-blocking external
// BST, B+tree, striped hash map).
//
// Usage:
//
//	ycsbbench                         # all structures, workloads A/B/C
//	ycsbbench -records 50000000       # the paper's key-space size
//	ycsbbench -structures ours,bptree -dur 10s
package main

import (
	"flag"
	"os"
	"strings"
	"time"

	"mvgc/internal/experiments"
)

func main() {
	var (
		records    = flag.Uint64("records", 1_000_000, "loaded key count (paper: 5e7)")
		threads    = flag.Int("threads", 0, "client threads (default GOMAXPROCS)")
		dur        = flag.Duration("dur", 3*time.Second, "measured duration per cell")
		latency    = flag.Duration("latency", 50*time.Millisecond, "batched update latency bound (paper: 50ms)")
		structures = flag.String("structures", "", "comma-separated structures (default ours,skiplist,lfbst,bptree,hashmap)")
	)
	flag.Parse()

	cfg := experiments.DefaultFigure7()
	cfg.Records = *records
	cfg.Duration = *dur
	cfg.MaxLatency = *latency
	if *threads > 0 {
		cfg.Threads = *threads
	}
	if *structures != "" {
		cfg.Structures = strings.Split(*structures, ",")
	}
	experiments.RunFigure7(cfg, os.Stdout)
}

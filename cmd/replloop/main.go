// Command replloop is the replication failover torture harness: it runs
// a leader mvgcd (WAL + background checkpointer) and a follower mvgcd
// (-follow), hammers the leader with pipelined SETs, SIGKILLs it, promotes
// the follower, verifies the promoted store, and swaps roles — repeatedly.
// The final round quiesces the load and waits for the follower to catch
// up before the kill, so every leader-acked write must be readable on the
// promoted follower, exactly.
//
// Usage:
//
//	go build -o /tmp/mvgcd ./cmd/mvgcd
//	go run ./cmd/replloop -mvgcd /tmp/mvgcd -rounds 3 -duration 2s
//
// Invariants checked per round (exit 1 on violation):
//
//   - Mid-load kill: per key, the promoted follower's value lies in
//     [baseline, lastAttempted] — it replayed a prefix of the leader's
//     log that includes everything up to the round's start barrier, and
//     invented nothing.  (Shipping is asynchronous, so a mid-burst kill
//     may legitimately lose acked-but-unshipped tail writes.)
//   - Quiesced kill (final round): per key, the promoted follower's
//     value EQUALS the last leader-acked value — the catch-up barrier
//     (a sentinel write observed through the stream) proves every
//     earlier log byte arrived.
//   - The promoted follower's cursor scan (SCANC pages) agrees with SUM
//     and LEN, and it accepts writes after PROMOTE.
//
// Role swap after each kill: the promoted follower is the next round's
// leader; the dead leader's directory is wiped and a fresh follower
// boots from the new leader's checkpoint stream — exercising the
// snapshot-bootstrap path whenever the checkpointer has retired log.
package main

import (
	"flag"
	"fmt"
	"net"
	"os"
	"os/exec"
	"strconv"
	"strings"
	"time"

	"mvgc/internal/netclient"
)

var (
	mvgcdBin  = flag.String("mvgcd", "mvgcd", "path to the mvgcd binary")
	addrA     = flag.String("addr-a", "127.0.0.1:6394", "first server address")
	addrB     = flag.String("addr-b", "127.0.0.1:6395", "second server address")
	rounds    = flag.Int("rounds", 3, "kill/promote cycles (the last is quiesced)")
	conns     = flag.Int("conns", 4, "concurrent pipelined connections")
	keys      = flag.Int("keys", 512, "distinct keys (each owned by one connection)")
	duration  = flag.Duration("duration", 2*time.Second, "load time per round before SIGKILL")
	depth     = flag.Int("depth", 64, "pipeline window per connection")
	ckptBytes = flag.Int64("checkpoint-bytes", 256<<10, "leader checkpointer byte trigger")
)

const sentinelKey = -1 // outside the load key range [0, keys)

// statInt extracts one counter from a STATS reply.
func statInt(stats, key string) int64 {
	for _, f := range strings.Fields(stats) {
		if v, ok := strings.CutPrefix(f, key+"="); ok {
			n, err := strconv.ParseInt(v, 10, 64)
			if err != nil {
				fatalf("STATS field %q: %v", f, err)
			}
			return n
		}
	}
	fatalf("STATS reply %q lacks %q", stats, key)
	return 0
}

func fatalf(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "replloop: "+format+"\n", args...)
	os.Exit(1)
}

// start launches one mvgcd and waits until it accepts connections.
func start(addr, dir, follow string) *exec.Cmd {
	args := []string{
		"-addr", addr, "-shards", "4", "-latency", "1ms",
		"-wal", dir, "-wal-fsync", "always",
		"-wal-segment-bytes", fmt.Sprint(32 << 10),
		"-checkpoint-bytes", fmt.Sprint(*ckptBytes),
	}
	if follow != "" {
		args = append(args, "-follow", follow)
	}
	cmd := exec.Command(*mvgcdBin, args...)
	cmd.Stdout = os.Stdout
	cmd.Stderr = os.Stderr
	if err := cmd.Start(); err != nil {
		fatalf("start %s: %v", *mvgcdBin, err)
	}
	deadline := time.Now().Add(10 * time.Second)
	for {
		nc, err := net.DialTimeout("tcp", addr, 250*time.Millisecond)
		if err == nil {
			nc.Close()
			return cmd
		}
		if time.Now().After(deadline) {
			cmd.Process.Kill()
			fatalf("server did not come up on %s", addr)
		}
		time.Sleep(50 * time.Millisecond)
	}
}

// barrier writes a sentinel to the leader and polls the follower until it
// appears — proof the follower has replayed every log byte appended
// before the sentinel (the stream is in log order).
func barrier(leaderAddr, followerAddr string, val int64) {
	cl, err := netclient.Dial(leaderAddr, 1)
	if err != nil {
		fatalf("barrier: dial leader: %v", err)
	}
	if err := cl.Set(sentinelKey, val); err != nil {
		fatalf("barrier: sentinel write: %v", err)
	}
	cl.Close()
	fcl, err := netclient.Dial(followerAddr, 1)
	if err != nil {
		fatalf("barrier: dial follower: %v", err)
	}
	defer fcl.Close()
	deadline := time.Now().Add(30 * time.Second)
	for {
		v, ok, err := fcl.Get(sentinelKey)
		if err != nil {
			fatalf("barrier: follower GET: %v", err)
		}
		if ok && v == val {
			return
		}
		if time.Now().After(deadline) {
			fatalf("follower %s never caught up to sentinel %d (at %d, ok=%v)", followerAddr, val, v, ok)
		}
		time.Sleep(25 * time.Millisecond)
	}
}

func main() {
	flag.Parse()
	dirA, err := os.MkdirTemp("", "replloop-a-")
	if err != nil {
		fatalf("%v", err)
	}
	defer os.RemoveAll(dirA)
	dirB, err := os.MkdirTemp("", "replloop-b-")
	if err != nil {
		fatalf("%v", err)
	}
	defer os.RemoveAll(dirB)

	// Per-key bookkeeping, owned by the main goroutine between rounds.
	baseline := make([]int64, *keys)  // value verified on the last promoted follower
	acked := make([]int64, *keys)     // last value whose +OK arrived this round
	attempted := make([]int64, *keys) // last value put on the wire, ever
	next := make([]int64, *keys)      // next value to write
	for k := range next {
		next[k] = 1
	}

	leaderAddr, followerAddr := *addrA, *addrB
	leaderDir, followerDir := dirA, dirB
	leader := start(leaderAddr, leaderDir, "")
	follower := start(followerAddr, followerDir, leaderAddr)
	sentinel := int64(0)

	for round := 1; round <= *rounds; round++ {
		final := round == *rounds
		sentinel++
		barrier(leaderAddr, followerAddr, sentinel)

		stop := make(chan struct{})
		type connState struct {
			acked, attempted []int64
			clean            bool // drained without transport errors
		}
		results := make(chan connState, *conns)
		for c := 0; c < *conns; c++ {
			go func(c int) {
				st := connState{
					acked:     make([]int64, *keys),
					attempted: make([]int64, *keys),
				}
				defer func() { results <- st }()
				cl, err := netclient.Dial(leaderAddr, *depth)
				if err != nil {
					return
				}
				defer cl.Close()
				type inflight struct {
					key int
					val int64
					p   *netclient.Pending
				}
				window := make([]inflight, 0, *depth)
				drain := func() bool {
					if err := cl.Flush(); err != nil {
						return false
					}
					ok := true
					for _, in := range window {
						if in.p.Err() == nil {
							st.acked[in.key] = in.val
						} else {
							ok = false
						}
					}
					window = window[:0]
					return ok
				}
				vals := make([]int64, *keys)
				for k := c; k < *keys; k += *conns {
					vals[k] = next[k]
				}
				for k := c; ; k += *conns {
					if k >= *keys {
						k = c
						select {
						case <-stop:
							st.clean = drain()
							return
						default:
						}
					}
					v := vals[k]
					vals[k]++
					st.attempted[k] = v
					window = append(window, inflight{key: k, val: v, p: cl.SetAsync(int64(k), v)})
					if len(window) == *depth {
						if !drain() {
							return
						}
					}
				}
			}(c)
		}

		time.Sleep(*duration)
		if final {
			// Quiesce: stop the load cleanly, then prove the follower has
			// everything before the kill.
			close(stop)
			collect := func() {
				for c := 0; c < *conns; c++ {
					st := <-results
					if !st.clean {
						fatalf("round %d: load failed during quiesced round", round)
					}
					for k := 0; k < *keys; k++ {
						acked[k] = max(acked[k], st.acked[k])
						if st.attempted[k] > attempted[k] {
							attempted[k] = st.attempted[k]
							next[k] = st.attempted[k] + 1
						}
					}
				}
			}
			collect()
			sentinel++
			barrier(leaderAddr, followerAddr, sentinel)
			// Checkpoint-scheduling acceptance: once quiet, the leader's
			// retained log must converge under 2x the checkpoint bound.
			lcl, err := netclient.Dial(leaderAddr, 1)
			if err != nil {
				fatalf("dial leader for wal bound: %v", err)
			}
			deadline := time.Now().Add(15 * time.Second)
			for {
				stats, err := lcl.Stats()
				if err != nil {
					fatalf("leader STATS: %v", err)
				}
				live := statInt(stats, "wal_live")
				if live < 2**ckptBytes {
					break
				}
				if time.Now().After(deadline) {
					fatalf("leader wal_live=%d never fell under 2x checkpoint bound %d", live, 2**ckptBytes)
				}
				time.Sleep(25 * time.Millisecond)
			}
			lcl.Close()
		} else {
			// Kill mid-burst, then let the load goroutines fail out.
			close(stop)
		}
		if err := leader.Process.Kill(); err != nil {
			fatalf("kill leader: %v", err)
		}
		leader.Wait()
		if !final {
			for c := 0; c < *conns; c++ {
				st := <-results
				for k := 0; k < *keys; k++ {
					acked[k] = max(acked[k], st.acked[k])
					if st.attempted[k] > attempted[k] {
						attempted[k] = st.attempted[k]
						next[k] = st.attempted[k] + 1
					}
				}
			}
		}

		// Promote the follower and verify it.
		cl, err := netclient.Dial(followerAddr, *depth)
		if err != nil {
			fatalf("round %d: dial follower: %v", round, err)
		}
		if err := cl.Promote(); err != nil {
			fatalf("round %d: PROMOTE: %v", round, err)
		}
		var scanSum, scanned int64
		recovered := make([]int64, *keys)
		sc := cl.Scanner(0, 128)
		for sc.Next() {
			e := sc.Entry()
			if e.Key < 0 || e.Key >= int64(*keys) {
				continue
			}
			recovered[e.Key] = e.Val
			scanSum += e.Val
			scanned++
		}
		if err := sc.Err(); err != nil {
			fatalf("round %d: cursor scan: %v", round, err)
		}
		for k := 0; k < *keys; k++ {
			v := recovered[k]
			switch {
			case final && v != max(baseline[k], acked[k]):
				fatalf("round %d: key %d = %d on promoted follower, want exactly %d (quiesced)",
					round, k, v, max(baseline[k], acked[k]))
			case v < baseline[k] || v > attempted[k]:
				fatalf("round %d: key %d = %d outside [baseline %d, attempted %d]",
					round, k, v, baseline[k], attempted[k])
			}
			baseline[k] = v
			if v >= next[k] {
				next[k] = v + 1
			}
			acked[k] = 0
		}
		sum, err := cl.Sum(0, int64(*keys))
		if err != nil {
			fatalf("round %d: SUM: %v", round, err)
		}
		if sum != scanSum {
			fatalf("round %d: SUM = %d but cursor scan totals %d", round, sum, scanSum)
		}
		n, err := cl.Len()
		if err != nil {
			fatalf("round %d: LEN: %v", round, err)
		}
		if n != scanned+1 { // +1 for the sentinel key
			fatalf("round %d: LEN = %d but %d keys present (+1 sentinel)", round, n, scanned)
		}
		// The promoted follower must accept writes with stamps that never
		// rewind: a fresh write must be visible immediately.
		if err := cl.Set(sentinelKey, sentinel+500); err != nil {
			fatalf("round %d: write after PROMOTE: %v", round, err)
		}
		if v, ok, err := cl.Get(sentinelKey); err != nil || !ok || v != sentinel+500 {
			fatalf("round %d: read-own-write after PROMOTE: v=%d ok=%v err=%v", round, v, ok, err)
		}
		sentinel += 500
		stats, _ := cl.Stats()
		cl.Close()
		fmt.Printf("replloop: round %d ok (final=%v): %d keys live, sum %d (%s)\n",
			round, final, scanned, sum, stats)

		if final {
			follower.Process.Signal(os.Interrupt)
			follower.Wait()
			break
		}
		// Role swap: the promoted follower leads; the dead leader's
		// directory is wiped and reborn as a fresh follower, which must
		// bootstrap from the new leader's snapshot when the checkpointer
		// has retired the log prefix.
		if err := os.RemoveAll(leaderDir); err != nil {
			fatalf("wipe %s: %v", leaderDir, err)
		}
		leader = follower
		leaderAddr, followerAddr = followerAddr, leaderAddr
		leaderDir, followerDir = followerDir, leaderDir
		follower = start(followerAddr, followerDir, leaderAddr)
	}
	fmt.Println("replloop: all rounds passed")
}

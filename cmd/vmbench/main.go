// Command vmbench regenerates Table 2 (query/update throughput and maximum
// live versions for the Base/PSWF/PSLF/HP/EP/RCU version-maintenance
// algorithms) and Figure 6 (maximum uncollected versions versus update
// granularity) from the paper's Section 7.1.
//
// Usage:
//
//	vmbench -table2                 # the 2×2 granularity grid, all algorithms
//	vmbench -figure6                # the nu sweep at nq=10
//	vmbench -n 100000000 -procs 141 -dur 15s -reps 3   # the paper's setup
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"mvgc/internal/experiments"
)

func main() {
	var (
		table2  = flag.Bool("table2", false, "run the Table 2 grid")
		figure6 = flag.Bool("figure6", false, "run the Figure 6 sweep")
		n       = flag.Int("n", 1_000_000, "initial tree size (paper: 1e8)")
		procs   = flag.Int("procs", 0, "total threads, 1 writer + rest readers (default GOMAXPROCS; paper: 141)")
		dur     = flag.Duration("dur", 3*time.Second, "measured duration per cell (paper: 15s)")
		reps    = flag.Int("reps", 1, "runs to average (paper: 3)")
		algs    = flag.String("algs", "", "comma-separated algorithms (default all: base,pswf,pslf,hp,epoch,rcu,sbgc)")
	)
	flag.Parse()
	if !*table2 && !*figure6 {
		*table2, *figure6 = true, true
	}

	cfg := experiments.DefaultTable2()
	cfg.N = *n
	cfg.Duration = *dur
	cfg.Reps = *reps
	if *procs > 0 {
		cfg.Procs = *procs
	}
	if *algs != "" {
		cfg.Algorithms = strings.Split(*algs, ",")
	}
	if cfg.Procs < 2 {
		fmt.Fprintln(os.Stderr, "vmbench: need at least 2 threads (1 writer + 1 reader)")
		os.Exit(1)
	}

	if *table2 {
		experiments.RunTable2(cfg, os.Stdout)
	}
	if *figure6 {
		f6 := experiments.DefaultFigure6()
		f6.Table2Config = cfg
		f6.NUs = []int{1, 10, 100, 1000, 10000}
		if *algs == "" {
			f6.Algorithms = []string{"pswf", "pslf", "hp", "epoch", "rcu"}
		}
		experiments.RunFigure6(f6, os.Stdout)
	}
}

// Command invbench regenerates Table 3: the weighted inverted index under
// simultaneous updates and "and"-queries, compared against running the same
// work separately.  The paper's claim is that Tu + Tq ≈ Tu+q, i.e.
// co-running adds almost no overhead because queries are delay-free reads
// on snapshots and the single writer's parallel unions soak up idle cores.
// A final row runs the hash-sharded index (-shards), whose S writers
// ingest in parallel.
//
// Usage:
//
//	invbench                          # sweep query-thread counts
//	invbench -docs 20000 -window 30s  # longer, larger corpus
//	invbench -shards 8 -json BENCH_inv.json
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"strconv"
	"strings"
	"time"

	"mvgc/internal/bench"
	"mvgc/internal/experiments"
)

func main() {
	var (
		vocab    = flag.Uint64("vocab", 50_000, "vocabulary size")
		doclen   = flag.Int("doclen", 48, "mean distinct terms per document")
		docs     = flag.Int("docs", 2_000, "initial corpus size in documents")
		threads  = flag.Int("threads", runtime.GOMAXPROCS(0), "total threads (default GOMAXPROCS; paper: 144)")
		window   = flag.Duration("window", 3*time.Second, "co-running window (paper: 30s)")
		qts      = flag.String("querythreads", "", "comma-separated query-thread counts to sweep")
		shards   = bench.ShardsFlag("shard count for the sharded-index row (0 skips it)")
		jsonPath = flag.String("json", "", "also write machine-readable results (BENCH_inv.json schema) to this path")
	)
	flag.Parse()

	cfg := experiments.DefaultTable3()
	cfg.Vocab = *vocab
	cfg.MeanDocLen = *doclen
	cfg.InitialDocs = *docs
	cfg.Window = *window
	cfg.Shards = *shards
	if *threads > 0 && *threads != cfg.Threads {
		cfg.Threads = *threads
		// The default sweep was sized for GOMAXPROCS; rebuild it for the
		// requested thread count.
		cfg.QueryThreads = experiments.QueryThreadSweep(*threads)
	}
	if *qts != "" {
		cfg.QueryThreads = nil
		for _, s := range strings.Split(*qts, ",") {
			v, err := strconv.Atoi(strings.TrimSpace(s))
			if err != nil {
				fmt.Fprintf(os.Stderr, "invbench: bad -querythreads value %q: %v\n", s, err)
				os.Exit(1)
			}
			cfg.QueryThreads = append(cfg.QueryThreads, v)
		}
	}
	results := experiments.RunTable3(cfg, os.Stdout)

	if *jsonPath != "" {
		report := bench.InvReport{
			Threads:     cfg.Threads,
			Vocab:       cfg.Vocab,
			InitialDocs: cfg.InitialDocs,
			WindowSec:   cfg.Window.Seconds(),
			Results:     results,
		}
		f, err := os.Create(*jsonPath)
		if err != nil {
			fmt.Fprintln(os.Stderr, "invbench:", err)
			os.Exit(1)
		}
		if err := report.WriteJSON(f); err != nil {
			fmt.Fprintln(os.Stderr, "invbench:", err)
			os.Exit(1)
		}
		if err := f.Close(); err != nil {
			fmt.Fprintln(os.Stderr, "invbench:", err)
			os.Exit(1)
		}
		fmt.Println("wrote", *jsonPath)
	}
}

// Command netbench sweeps the serving layer across connection count and
// pipelining depth and emits a BENCH_net/v1 report: throughput, p50/p99
// latency, and the headline coalescing metric commits-per-op — combiner
// commits divided by write operations.  An unbatched server pays one
// commit per write (1.0); the pipelined front door should drive the ratio
// toward zero as connections and depth grow, because every shard's
// in-flight writes from ALL connections ride one commit per batching
// interval (O(shards) commits for N sockets' traffic).
//
// After the GET/SET grid, one scan cell runs at the sweep's widest
// (conns, depth) point with -scanfrac of its operations issued as SCAN
// commands (uniform length 1–100), so the server-side merged-scan path is
// tracked by the same report; -scanfrac 0 skips it.
//
// The server runs in-process on a loopback listener, so the sweep is
// self-contained and STATS deltas are exact; -addr targets an external
// mvgcd instead (commits-per-op then includes any other clients' traffic).
//
// Usage:
//
//	netbench -conns 1,4,16,64 -depth 1,8,64 -shards 8 -dur 2s -json BENCH_net.json
package main

import (
	"flag"
	"fmt"
	"net"
	"os"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"

	"mvgc/internal/bench"
	"mvgc/internal/netclient"
	"mvgc/internal/netserver"
	"mvgc/internal/ycsb"
)

func main() {
	var (
		connsCSV  = flag.String("conns", "1,4,16,64", "connection counts to sweep")
		depthCSV  = flag.String("depth", "1,8,64", "pipelining depths to sweep")
		shards    = bench.ShardsFlag("")
		keys      = flag.Int64("keys", 100_000, "key space size")
		writeFrac = flag.Float64("writefrac", 1.0, "fraction of ops that are SETs (rest GETs)")
		scanFrac  = flag.Float64("scanfrac", 0.05, "scan cell: fraction of ops that are SCANs (0 skips the scan cell)")
		dur       = flag.Duration("dur", 2*time.Second, "measured duration per cell")
		latency   = flag.Duration("latency", time.Millisecond, "server combiner batching latency bound")
		addr      = flag.String("addr", "", "benchmark an external server instead of in-process")
		jsonPath  = flag.String("json", "", "write a BENCH_net/v1 report to this file")
	)
	flag.Parse()

	conns, err := csvInts(*connsCSV)
	if err == nil {
		var depths []int
		depths, err = csvInts(*depthCSV)
		if err == nil {
			err = run(conns, depths, *shards, *keys, *writeFrac, *scanFrac, *dur, *latency, *addr, *jsonPath)
		}
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "netbench:", err)
		os.Exit(1)
	}
}

func csvInts(s string) ([]int, error) {
	var out []int
	for _, f := range strings.Split(s, ",") {
		n, err := strconv.Atoi(strings.TrimSpace(f))
		if err != nil || n <= 0 {
			return nil, fmt.Errorf("bad sweep list %q", s)
		}
		out = append(out, n)
	}
	return out, nil
}

func run(conns, depths []int, shards int, keys int64, writeFrac, scanFrac float64, dur, latency time.Duration, addr, jsonPath string) error {
	if addr == "" {
		maxConns := 0
		for _, c := range conns {
			if c > maxConns {
				maxConns = c
			}
		}
		srv, err := netserver.New(netserver.Config{
			Shards:     shards,
			MaxConns:   maxConns + 1, // +1: the control connection reading STATS
			MaxLatency: latency,
		})
		if err != nil {
			return err
		}
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			return err
		}
		go srv.Serve(ln)
		defer srv.Shutdown()
		addr = ln.Addr().String()
	}

	ctl, err := netclient.Dial(addr, 4)
	if err != nil {
		return err
	}
	defer ctl.Close()

	rep := &bench.NetReport{
		Shards:      shards,
		WriteFrac:   writeFrac,
		Keys:        keys,
		DurationSec: dur.Seconds(),
	}
	fmt.Printf("%6s %6s %6s %12s %10s %10s %14s\n", "conns", "depth", "scan%", "ops/s", "p50(us)", "p99(us)", "commits/op")
	emit := func(rec bench.NetRecord) {
		rep.Results = append(rep.Results, rec)
		fmt.Printf("%6d %6d %6.0f %12.0f %10.1f %10.1f %14.4f\n",
			rec.Conns, rec.Depth, rec.ScanFrac*100, rec.OpsPerSec, rec.P50Us, rec.P99Us, rec.CommitsPerOp)
	}
	for _, c := range conns {
		for _, d := range depths {
			rec, err := cell(addr, c, d, keys, writeFrac, 0, dur, ctl)
			if err != nil {
				return err
			}
			emit(rec)
		}
	}
	if scanFrac > 0 {
		// One scan cell at the sweep's widest point: scanFrac of the ops are
		// SCAN commands of uniform length 1–100, streamed through the server's
		// loser-tree merge off one consistent cut, mixed with the usual
		// GET/SET traffic.  Kept to a single cell so the sweep's cost stays
		// dominated by the classic grid.
		maxC, maxD := conns[0], depths[0]
		for _, c := range conns {
			if c > maxC {
				maxC = c
			}
		}
		for _, d := range depths {
			if d > maxD {
				maxD = d
			}
		}
		rec, err := cell(addr, maxC, maxD, keys, writeFrac, scanFrac, dur, ctl)
		if err != nil {
			return err
		}
		emit(rec)
	}

	if jsonPath != "" {
		f, err := os.Create(jsonPath)
		if err != nil {
			return err
		}
		defer f.Close()
		return rep.WriteJSON(f)
	}
	return nil
}

// stat reads one counter from the server.
func stat(ctl *netclient.Client, key string) (int64, error) {
	s, err := ctl.Stats()
	if err != nil {
		return 0, err
	}
	for _, f := range strings.Fields(s) {
		if v, ok := strings.CutPrefix(f, key+"="); ok {
			return strconv.ParseInt(v, 10, 64)
		}
	}
	return 0, fmt.Errorf("STATS reply %q lacks %q", s, key)
}

// cell measures one (connections, depth) point: each connection keeps
// depth requests in flight (windowed pipelining), latencies are per-op
// send-to-reply, and commits-per-op is the server-side combiner commit
// delta over the write ops this cell issued.  A positive scanFrac replaces
// that fraction of operations with SCAN commands of uniform length 1–100.
func cell(addr string, conns, depth int, keys int64, writeFrac, scanFrac float64, dur time.Duration, ctl *netclient.Client) (bench.NetRecord, error) {
	batches0, err := stat(ctl, "batches")
	if err != nil {
		return bench.NetRecord{}, err
	}

	type res struct {
		ops    int64
		writes int64
		lats   []time.Duration
		err    error
	}
	results := make([]res, conns)
	var wg sync.WaitGroup
	deadline := time.Now().Add(dur)
	for w := 0; w < conns; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			r := &results[w]
			c, err := netclient.Dial(addr, depth)
			if err != nil {
				r.err = err
				return
			}
			defer c.Close()
			rng := ycsb.NewSplitMix64(uint64(w)*0x9E3779B97F4A7C15 + 1)
			type inflight struct {
				p  *netclient.Pending
				t0 time.Time
			}
			window := make([]inflight, 0, depth)
			wait := func(f inflight) {
				if err := f.p.Wait(); err != nil && r.err == nil {
					r.err = err
				}
				r.lats = append(r.lats, time.Since(f.t0))
				r.ops++
			}
			for r.err == nil && time.Now().Before(deadline) {
				k := int64(rng.Next() % uint64(keys))
				var p *netclient.Pending
				switch {
				case scanFrac > 0 && rng.Float64() < scanFrac:
					p = c.ScanAsync(k, 1+int(rng.Intn(100)))
				case writeFrac >= 1 || rng.Float64() < writeFrac:
					p = c.SetAsync(k, k)
					r.writes++
				default:
					p = c.GetAsync(k)
				}
				window = append(window, inflight{p, time.Now()})
				if len(window) >= depth {
					// Window full: push the batch to the wire, then retire
					// the oldest.  (Replies are in order, so the oldest is
					// always the next to complete.)
					if err := c.Flush(); err != nil {
						r.err = err
						break
					}
					wait(window[0])
					copy(window, window[1:])
					window = window[:len(window)-1]
				}
			}
			if err := c.Flush(); err == nil {
				for _, f := range window {
					wait(f)
				}
			}
		}(w)
	}
	wg.Wait()

	rec := bench.NetRecord{Conns: conns, Depth: depth, ScanFrac: scanFrac}
	var lats []time.Duration
	var writes int64
	for i := range results {
		if results[i].err != nil {
			return rec, results[i].err
		}
		rec.Ops += results[i].ops
		writes += results[i].writes
		lats = append(lats, results[i].lats...)
	}
	rec.OpsPerSec = float64(rec.Ops) / dur.Seconds()
	sort.Slice(lats, func(i, j int) bool { return lats[i] < lats[j] })
	if n := len(lats); n > 0 {
		rec.P50Us = float64(lats[n/2].Microseconds())
		rec.P99Us = float64(lats[n*99/100].Microseconds())
	}
	batches1, err := stat(ctl, "batches")
	if err != nil {
		return rec, err
	}
	if writes > 0 {
		rec.CommitsPerOp = float64(batches1-batches0) / float64(writes)
	}
	return rec, nil
}

// Command netbench sweeps the serving layer across connection count and
// pipelining depth and emits a BENCH_net/v1 report: throughput, p50/p99
// latency, and the headline coalescing metric commits-per-op — combiner
// commits divided by write operations.  An unbatched server pays one
// commit per write (1.0); the pipelined front door should drive the ratio
// toward zero as connections and depth grow, because every shard's
// in-flight writes from ALL connections ride one commit per batching
// interval (O(shards) commits for N sockets' traffic).
//
// After the GET/SET grid, one scan cell runs at the sweep's widest
// (conns, depth) point with -scanfrac of its operations issued as SCAN
// commands (uniform length 1–100), so the server-side merged-scan path is
// tracked by the same report; -scanfrac 0 skips it.
//
// One replication cell follows (-repl, in-process only): the widest point
// again, but against a WAL-backed leader streaming its log to a live
// follower.  Alongside the usual throughput numbers the cell reports the
// replication lag — how long after a probe write is acked on the leader
// its value becomes readable on the follower — as p50/p99 percentiles.
//
// The server runs in-process on a loopback listener, so the sweep is
// self-contained and STATS deltas are exact; -addr targets an external
// mvgcd instead (commits-per-op then includes any other clients' traffic).
//
// Usage:
//
//	netbench -conns 1,4,16,64 -depth 1,8,64 -shards 8 -dur 2s -json BENCH_net.json
package main

import (
	"flag"
	"fmt"
	"net"
	"os"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"

	"mvgc"
	"mvgc/internal/bench"
	"mvgc/internal/netclient"
	"mvgc/internal/netserver"
	"mvgc/internal/wal"
	"mvgc/internal/ycsb"
)

func main() {
	var (
		connsCSV  = flag.String("conns", "1,4,16,64", "connection counts to sweep")
		depthCSV  = flag.String("depth", "1,8,64", "pipelining depths to sweep")
		shards    = bench.ShardsFlag("")
		keys      = flag.Int64("keys", 100_000, "key space size")
		writeFrac = flag.Float64("writefrac", 1.0, "fraction of ops that are SETs (rest GETs)")
		scanFrac  = flag.Float64("scanfrac", 0.05, "scan cell: fraction of ops that are SCANs (0 skips the scan cell)")
		repl      = flag.Bool("repl", true, "replication cell: rerun the widest point against a WAL-backed leader with a live follower (skipped with -addr)")
		dur       = flag.Duration("dur", 2*time.Second, "measured duration per cell")
		latency   = flag.Duration("latency", time.Millisecond, "server combiner batching latency bound")
		addr      = flag.String("addr", "", "benchmark an external server instead of in-process")
		jsonPath  = flag.String("json", "", "write a BENCH_net/v1 report to this file")
	)
	flag.Parse()

	conns, err := csvInts(*connsCSV)
	if err == nil {
		var depths []int
		depths, err = csvInts(*depthCSV)
		if err == nil {
			err = run(conns, depths, *shards, *keys, *writeFrac, *scanFrac, *repl, *dur, *latency, *addr, *jsonPath)
		}
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "netbench:", err)
		os.Exit(1)
	}
}

func csvInts(s string) ([]int, error) {
	var out []int
	for _, f := range strings.Split(s, ",") {
		n, err := strconv.Atoi(strings.TrimSpace(f))
		if err != nil || n <= 0 {
			return nil, fmt.Errorf("bad sweep list %q", s)
		}
		out = append(out, n)
	}
	return out, nil
}

func run(conns, depths []int, shards int, keys int64, writeFrac, scanFrac float64, repl bool, dur, latency time.Duration, addr, jsonPath string) error {
	external := addr != ""
	if addr == "" {
		maxConns := 0
		for _, c := range conns {
			if c > maxConns {
				maxConns = c
			}
		}
		srv, err := netserver.New(netserver.Config{
			Shards:     shards,
			MaxConns:   maxConns + 1, // +1: the control connection reading STATS
			MaxLatency: latency,
		})
		if err != nil {
			return err
		}
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			return err
		}
		go srv.Serve(ln)
		defer srv.Shutdown()
		addr = ln.Addr().String()
	}

	ctl, err := netclient.Dial(addr, 4)
	if err != nil {
		return err
	}
	defer ctl.Close()

	rep := &bench.NetReport{
		Shards:      shards,
		WriteFrac:   writeFrac,
		Keys:        keys,
		DurationSec: dur.Seconds(),
	}
	fmt.Printf("%6s %6s %6s %12s %10s %10s %14s\n", "conns", "depth", "scan%", "ops/s", "p50(us)", "p99(us)", "commits/op")
	emit := func(rec bench.NetRecord) {
		rep.Results = append(rep.Results, rec)
		extra := ""
		if rec.Repl {
			extra = fmt.Sprintf("  repl lag p50=%.0fus p99=%.0fus", rec.ReplLagP50Us, rec.ReplLagP99Us)
		}
		fmt.Printf("%6d %6d %6.0f %12.0f %10.1f %10.1f %14.4f%s\n",
			rec.Conns, rec.Depth, rec.ScanFrac*100, rec.OpsPerSec, rec.P50Us, rec.P99Us, rec.CommitsPerOp, extra)
	}
	for _, c := range conns {
		for _, d := range depths {
			rec, err := cell(addr, c, d, keys, writeFrac, 0, dur, ctl)
			if err != nil {
				return err
			}
			emit(rec)
		}
	}
	maxC, maxD := conns[0], depths[0]
	for _, c := range conns {
		if c > maxC {
			maxC = c
		}
	}
	for _, d := range depths {
		if d > maxD {
			maxD = d
		}
	}
	if scanFrac > 0 {
		// One scan cell at the sweep's widest point: scanFrac of the ops are
		// SCAN commands of uniform length 1–100, streamed through the server's
		// loser-tree merge off one consistent cut, mixed with the usual
		// GET/SET traffic.  Kept to a single cell so the sweep's cost stays
		// dominated by the classic grid.
		rec, err := cell(addr, maxC, maxD, keys, writeFrac, scanFrac, dur, ctl)
		if err != nil {
			return err
		}
		emit(rec)
	}
	if repl && !external {
		// One replication cell, again at the widest point: the load runs
		// against a fresh WAL-backed leader whose log is streamed to a live
		// follower, and the lag percentiles come from probe writes raced
		// against follower visibility.  Needs in-process servers (the cell
		// owns both ends), so -addr skips it.
		rec, err := replCell(maxC, maxD, shards, keys, writeFrac, dur, latency)
		if err != nil {
			return err
		}
		emit(rec)
	}

	if jsonPath != "" {
		f, err := os.Create(jsonPath)
		if err != nil {
			return err
		}
		defer f.Close()
		return rep.WriteJSON(f)
	}
	return nil
}

// stat reads one counter from the server.
func stat(ctl *netclient.Client, key string) (int64, error) {
	s, err := ctl.Stats()
	if err != nil {
		return 0, err
	}
	for _, f := range strings.Fields(s) {
		if v, ok := strings.CutPrefix(f, key+"="); ok {
			return strconv.ParseInt(v, 10, 64)
		}
	}
	return 0, fmt.Errorf("STATS reply %q lacks %q", s, key)
}

// cell measures one (connections, depth) point: each connection keeps
// depth requests in flight (windowed pipelining), latencies are per-op
// send-to-reply, and commits-per-op is the server-side combiner commit
// delta over the write ops this cell issued.  A positive scanFrac replaces
// that fraction of operations with SCAN commands of uniform length 1–100.
func cell(addr string, conns, depth int, keys int64, writeFrac, scanFrac float64, dur time.Duration, ctl *netclient.Client) (bench.NetRecord, error) {
	batches0, err := stat(ctl, "batches")
	if err != nil {
		return bench.NetRecord{}, err
	}

	type res struct {
		ops    int64
		writes int64
		lats   []time.Duration
		err    error
	}
	results := make([]res, conns)
	var wg sync.WaitGroup
	deadline := time.Now().Add(dur)
	for w := 0; w < conns; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			r := &results[w]
			c, err := netclient.Dial(addr, depth)
			if err != nil {
				r.err = err
				return
			}
			defer c.Close()
			rng := ycsb.NewSplitMix64(uint64(w)*0x9E3779B97F4A7C15 + 1)
			type inflight struct {
				p  *netclient.Pending
				t0 time.Time
			}
			window := make([]inflight, 0, depth)
			wait := func(f inflight) {
				if err := f.p.Wait(); err != nil && r.err == nil {
					r.err = err
				}
				r.lats = append(r.lats, time.Since(f.t0))
				r.ops++
			}
			for r.err == nil && time.Now().Before(deadline) {
				k := int64(rng.Next() % uint64(keys))
				var p *netclient.Pending
				switch {
				case scanFrac > 0 && rng.Float64() < scanFrac:
					p = c.ScanAsync(k, 1+int(rng.Intn(100)))
				case writeFrac >= 1 || rng.Float64() < writeFrac:
					p = c.SetAsync(k, k)
					r.writes++
				default:
					p = c.GetAsync(k)
				}
				window = append(window, inflight{p, time.Now()})
				if len(window) >= depth {
					// Window full: push the batch to the wire, then retire
					// the oldest.  (Replies are in order, so the oldest is
					// always the next to complete.)
					if err := c.Flush(); err != nil {
						r.err = err
						break
					}
					wait(window[0])
					copy(window, window[1:])
					window = window[:len(window)-1]
				}
			}
			if err := c.Flush(); err == nil {
				for _, f := range window {
					wait(f)
				}
			}
		}(w)
	}
	wg.Wait()

	rec := bench.NetRecord{Conns: conns, Depth: depth, ScanFrac: scanFrac}
	var lats []time.Duration
	var writes int64
	for i := range results {
		if results[i].err != nil {
			return rec, results[i].err
		}
		rec.Ops += results[i].ops
		writes += results[i].writes
		lats = append(lats, results[i].lats...)
	}
	rec.OpsPerSec = float64(rec.Ops) / dur.Seconds()
	sort.Slice(lats, func(i, j int) bool { return lats[i] < lats[j] })
	if n := len(lats); n > 0 {
		rec.P50Us = float64(lats[n/2].Microseconds())
		rec.P99Us = float64(lats[n*99/100].Microseconds())
	}
	batches1, err := stat(ctl, "batches")
	if err != nil {
		return rec, err
	}
	if writes > 0 {
		rec.CommitsPerOp = float64(batches1-batches0) / float64(writes)
	}
	return rec, nil
}

// replCell measures the serving layer with replication attached: a
// WAL-backed leader (in-memory filesystem, fsync off — the subject is the
// shipping pipeline, not the disk) streams its log to a live follower
// while the widest (conns, depth) load runs against the leader.
// Throughput, latency and commits-per-op are measured exactly as in
// cell(); on top, a prober writes a key outside the benchmark keyspace to
// the leader and polls the follower until the value is visible, and the
// acked-to-visible round trips become the cell's replication-lag
// percentiles.
func replCell(conns, depth, shards int, keys int64, writeFrac float64, dur, latency time.Duration) (bench.NetRecord, error) {
	rec := bench.NetRecord{Conns: conns, Depth: depth, Repl: true}
	leader, err := netserver.New(netserver.Config{
		Shards:     shards,
		MaxConns:   conns + 8, // load conns + control + prober + follower's REPL stream
		MaxLatency: latency,
		WAL:        mvgc.WALOptions{Dir: "wal", FS: wal.NewMemFS(), Fsync: "off"},
	})
	if err != nil {
		return rec, err
	}
	lln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return rec, err
	}
	go leader.Serve(lln)
	defer leader.Shutdown()
	leaderAddr := lln.Addr().String()

	follower, err := netserver.New(netserver.Config{
		Shards:     shards,
		MaxConns:   8,
		MaxLatency: latency,
		WAL:        mvgc.WALOptions{Dir: "wal", FS: wal.NewMemFS(), Fsync: "off"},
		Follow:     leaderAddr,
	})
	if err != nil {
		return rec, err
	}
	fln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return rec, err
	}
	go follower.Serve(fln)
	defer follower.Shutdown()

	ctl, err := netclient.Dial(leaderAddr, 4)
	if err != nil {
		return rec, err
	}
	defer ctl.Close()
	lp, err := netclient.Dial(leaderAddr, 1)
	if err != nil {
		return rec, err
	}
	defer lp.Close()
	fp, err := netclient.Dial(fln.Addr().String(), 1)
	if err != nil {
		return rec, err
	}
	defer fp.Close()

	// The prober: write probeKey=v to the leader (synchronous, so the
	// clock starts at the ack), then poll the follower until the value
	// arrives.  A short pause between probes keeps the prober's own
	// traffic negligible next to the benchmark load.
	const probeKey = int64(-1)
	stop := make(chan struct{})
	type probeRes struct {
		lags []time.Duration
		err  error
	}
	probeCh := make(chan probeRes, 1)
	go func() {
		var r probeRes
		defer func() { probeCh <- r }()
		for v := int64(1); ; v++ {
			select {
			case <-stop:
				return
			default:
			}
			if err := lp.Set(probeKey, v); err != nil {
				r.err = err
				return
			}
			t0 := time.Now()
			for {
				got, ok, err := fp.Get(probeKey)
				if err != nil {
					r.err = err
					return
				}
				if ok && got >= v {
					break
				}
				if time.Since(t0) > 10*time.Second {
					r.err = fmt.Errorf("follower never saw probe %d", v)
					return
				}
				time.Sleep(50 * time.Microsecond)
			}
			r.lags = append(r.lags, time.Since(t0))
			time.Sleep(2 * time.Millisecond)
		}
	}()

	rec, err = cell(leaderAddr, conns, depth, keys, writeFrac, 0, dur, ctl)
	close(stop)
	probe := <-probeCh
	rec.Repl = true
	if err != nil {
		return rec, err
	}
	if probe.err != nil {
		return rec, fmt.Errorf("replication prober: %w", probe.err)
	}
	lags := probe.lags
	sort.Slice(lags, func(i, j int) bool { return lags[i] < lags[j] })
	if n := len(lags); n > 0 {
		rec.ReplLagP50Us = float64(lags[n/2].Microseconds())
		rec.ReplLagP99Us = float64(lags[n*99/100].Microseconds())
	}
	return rec, nil
}

// Command mvgcd serves a sharded multiversion map over the netproto wire
// protocol (a RESP subset): the repo's network front door.
//
// Pipelined clients (internal/netclient, cmd/netbench, or anything that
// speaks RESP arrays of bulk strings) get SET/GET/DEL/SUM/LEN/SCAN/MCAS/
// PING/STATS; every connection's writes flow through the per-shard combining
// writers, so N connections' pipelined SETs coalesce into O(shards)
// commits per batching interval (see internal/netserver).
//
// Usage:
//
//	mvgcd -addr :6380 -shards 8 -maxconns 256 -latency 1ms
//
// SIGINT/SIGTERM shut down gracefully: accepted requests are committed
// and answered before the process exits.
package main

import (
	"flag"
	"fmt"
	"net"
	"os"
	"os/signal"
	"syscall"
	"time"

	"mvgc/internal/bench"
	"mvgc/internal/netserver"
)

func main() {
	var (
		addr       = flag.String("addr", ":6380", "listen address")
		shards     = bench.ShardsFlag("")
		maxConns   = flag.Int("maxconns", 256, "connections served concurrently (combiner fan-in)")
		pipeline   = flag.Int("pipeline", 1024, "max outstanding responses per connection")
		latency    = flag.Duration("latency", time.Millisecond, "combiner batching latency bound")
		consistent = flag.Bool("consistent", false, "serve SUM/LEN/SCAN from globally consistent snapshots")
	)
	flag.Parse()

	srv, err := netserver.New(netserver.Config{
		Shards:      *shards,
		MaxConns:    *maxConns,
		MaxPipeline: *pipeline,
		MaxLatency:  *latency,
		Consistent:  *consistent,
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, "mvgcd:", err)
		os.Exit(1)
	}
	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		fmt.Fprintln(os.Stderr, "mvgcd:", err)
		os.Exit(1)
	}
	fmt.Printf("mvgcd: serving on %s (shards=%d maxconns=%d latency=%s)\n",
		ln.Addr(), *shards, *maxConns, *latency)

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	go func() {
		<-sig
		fmt.Println("mvgcd: shutting down")
		srv.Shutdown()
	}()

	if err := srv.Serve(ln); err != nil {
		fmt.Fprintln(os.Stderr, "mvgcd:", err)
		os.Exit(1)
	}
}

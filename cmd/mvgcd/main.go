// Command mvgcd serves a sharded multiversion map over the netproto wire
// protocol (a RESP subset): the repo's network front door.
//
// Pipelined clients (internal/netclient, cmd/netbench, or anything that
// speaks RESP arrays of bulk strings) get SET/GET/DEL/SUM/LEN/SCAN/SCANC/
// MCAS/PING/STATS; every connection's writes flow through the per-shard
// combining writers, so N connections' pipelined SETs coalesce into
// O(shards) commits per batching interval (see internal/netserver).
//
// Usage:
//
//	mvgcd -addr :6380 -shards 8 -maxconns 256 -latency 1ms
//	mvgcd -addr :6380 -wal /var/lib/mvgcd -wal-fsync always
//	mvgcd -addr :6381 -wal /var/lib/mvgcd-f -follow leader:6380
//
// With -wal every acknowledged write is appended to a segmented redo log
// and fsynced per -wal-fsync before its +OK goes out; on restart mvgcd
// recovers the newest checkpoint snapshot plus all logged records before
// serving, so a kill -9 loses nothing that was acked.  -checkpoint-bytes /
// -checkpoint-age enable the background checkpointer, which bounds the
// retained log by folding it into snapshots.
//
// With -follow the server starts as a read-only replica: it streams the
// leader's WAL (REPL wire command), replays it through the same
// GSN-ordered apply path recovery uses, and answers reads.  PROMOTE on
// the wire — or SIGUSR1 — detaches it from the leader and enables
// writes, with the GSN floored so stamps never rewind past replayed
// history.
//
// SIGINT/SIGTERM shut down gracefully: accepted requests are committed,
// answered and — with -wal — flushed to durable storage before the
// process exits.
package main

import (
	"flag"
	"fmt"
	"net"
	"os"
	"os/signal"
	"syscall"
	"time"

	"mvgc"
	"mvgc/internal/bench"
	"mvgc/internal/netserver"
)

func main() {
	var (
		addr       = flag.String("addr", ":6380", "listen address")
		shards     = bench.ShardsFlag("")
		maxConns   = flag.Int("maxconns", 256, "connections served concurrently (combiner fan-in)")
		pipeline   = flag.Int("pipeline", 1024, "max outstanding responses per connection")
		latency    = flag.Duration("latency", time.Millisecond, "combiner batching latency bound")
		consistent = flag.Bool("consistent", false, "serve SUM/LEN/SCAN from globally consistent snapshots")
		walDir     = flag.String("wal", "", "write-ahead log directory (empty = purely in-memory)")
		walFsync   = flag.String("wal-fsync", "always", "WAL fsync policy: always, interval or off")
		walSegment = flag.Int64("wal-segment-bytes", 0, "WAL segment size before rotation (0 = default 64MiB)")
		ckptBytes  = flag.Int64("checkpoint-bytes", 0, "checkpoint when retained log exceeds this many bytes (0 = off)")
		ckptAge    = flag.Duration("checkpoint-age", 0, "checkpoint when the log grew and this much time passed (0 = off)")
		follow     = flag.String("follow", "", "follow a leader at this address (read-only until PROMOTE/SIGUSR1; requires -wal)")
	)
	flag.Parse()

	srv, err := netserver.New(netserver.Config{
		Shards:      *shards,
		MaxConns:    *maxConns,
		MaxPipeline: *pipeline,
		MaxLatency:  *latency,
		Consistent:  *consistent,
		WAL: mvgc.WALOptions{
			Dir:             *walDir,
			Fsync:           *walFsync,
			SegmentBytes:    *walSegment,
			CheckpointBytes: *ckptBytes,
			CheckpointAge:   *ckptAge,
		},
		Follow: *follow,
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, "mvgcd:", err)
		os.Exit(1)
	}
	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		fmt.Fprintln(os.Stderr, "mvgcd:", err)
		os.Exit(1)
	}
	durability := "in-memory"
	if *walDir != "" {
		durability = fmt.Sprintf("wal=%s fsync=%s", *walDir, *walFsync)
	}
	role := ""
	if *follow != "" {
		role = fmt.Sprintf(" following=%s", *follow)
	}
	fmt.Printf("mvgcd: serving on %s (shards=%d maxconns=%d latency=%s %s%s)\n",
		ln.Addr(), *shards, *maxConns, *latency, durability, role)

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	go func() {
		<-sig
		fmt.Println("mvgcd: shutting down")
		srv.Shutdown()
	}()

	promote := make(chan os.Signal, 1)
	signal.Notify(promote, syscall.SIGUSR1)
	go func() {
		for range promote {
			fmt.Println("mvgcd: promoting to leader")
			srv.Promote()
		}
	}()

	if err := srv.Serve(ln); err != nil {
		fmt.Fprintln(os.Stderr, "mvgcd:", err)
		os.Exit(1)
	}
}

// Benchmark entry points, one per table and figure of the paper's
// evaluation (Section 7), plus the ablations called out in DESIGN.md.
// Each benchmark runs a scaled-down configuration per iteration and
// reports the experiment's own metrics via b.ReportMetric; the cmd/
// binaries run the full-scale versions.
//
//	go test -bench Table2 -benchtime 1x .
//	go test -bench . -benchmem .
package mvgc

import (
	"fmt"
	"sync"
	"testing"
	"time"

	"mvgc/internal/batch"
	"mvgc/internal/core"
	"mvgc/internal/experiments"
	"mvgc/internal/ftree"
	"mvgc/internal/shard"
	"mvgc/internal/vlist"
	"mvgc/internal/vm"
	"mvgc/internal/ycsb"
)

// benchProcs keeps the experiment benches bounded on small CI hosts while
// still exercising real concurrency.
const benchProcs = 8

func smallTable2() experiments.Table2Config {
	cfg := experiments.DefaultTable2()
	cfg.N = 100_000
	cfg.Procs = benchProcs
	cfg.Duration = 200 * time.Millisecond
	cfg.Reps = 1
	return cfg
}

// BenchmarkTable2 regenerates one Table 2 cell per algorithm: query and
// update throughput plus the max-version count under a single writer and
// P-1 range-sum readers.
func BenchmarkTable2(b *testing.B) {
	for _, alg := range vm.Names() {
		for _, gran := range [][2]int{{10, 10}, {10, 1000}, {1000, 10}, {1000, 1000}} {
			b.Run(fmt.Sprintf("%s/nq=%d/nu=%d", alg, gran[0], gran[1]), func(b *testing.B) {
				cfg := smallTable2()
				var q, u float64
				var v int64
				for i := 0; i < b.N; i++ {
					c := experiments.RunTable2Cell(cfg, alg, gran[0], gran[1])
					q += c.QueryMops
					u += c.UpdateMops
					v = c.MaxVersions
				}
				b.ReportMetric(q/float64(b.N), "Mqueries/s")
				b.ReportMetric(u/float64(b.N), "Mupdates/s")
				b.ReportMetric(float64(v), "max-versions")
			})
		}
	}
}

// BenchmarkFigure6 regenerates the Figure 6 series: max uncollected
// versions versus update granularity at nq=10.
func BenchmarkFigure6(b *testing.B) {
	for _, alg := range []string{"pswf", "pslf", "hp", "epoch", "rcu"} {
		for _, nu := range []int{1, 100, 10000} {
			b.Run(fmt.Sprintf("%s/nu=%d", alg, nu), func(b *testing.B) {
				cfg := smallTable2()
				var v int64
				for i := 0; i < b.N; i++ {
					c := experiments.RunTable2Cell(cfg, alg, 10, nu)
					v = c.MaxVersions
				}
				b.ReportMetric(float64(v), "max-versions")
			})
		}
	}
}

// BenchmarkFigure7 regenerates the YCSB comparison: ours (batched
// functional tree) against the concurrent baselines on workloads A/B/C.
func BenchmarkFigure7(b *testing.B) {
	cfg := experiments.DefaultFigure7()
	cfg.Records = 200_000
	cfg.Threads = benchProcs
	cfg.Duration = 200 * time.Millisecond
	cfg.MaxLatency = 2 * time.Millisecond
	for _, s := range cfg.Structures {
		for _, w := range cfg.Workloads {
			b.Run(fmt.Sprintf("%s/%s", s, w.Name[:1]), func(b *testing.B) {
				var mops float64
				for i := 0; i < b.N; i++ {
					mops += experiments.RunFigure7Cell(cfg, s, w)
				}
				b.ReportMetric(mops/float64(b.N), "Mops/s")
			})
		}
	}
}

// BenchmarkFigure7ShardScaling sweeps the shard count S for the sharded
// structure on the update-heavy workload A: every shard adds an independent
// combining writer, so update throughput should grow with S until the
// machine runs out of cores (S=1 approximates the unsharded "ours").
func BenchmarkFigure7ShardScaling(b *testing.B) {
	cfg := experiments.DefaultFigure7()
	cfg.Records = 200_000
	cfg.Threads = benchProcs
	cfg.Duration = 200 * time.Millisecond
	cfg.MaxLatency = 2 * time.Millisecond
	for _, shards := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("shards=%d", shards), func(b *testing.B) {
			cfg := cfg
			cfg.Shards = shards
			var mops float64
			for i := 0; i < b.N; i++ {
				mops += experiments.RunFigure7Cell(cfg, "ours-sharded", ycsb.WorkloadA)
			}
			b.ReportMetric(mops/float64(b.N), "Mops/s")
		})
	}
}

// BenchmarkDBGet compares the two pid-free point-read paths on one map:
// "lease" acquires and releases a pid from the PidPool per op (two mutex
// hits — the pre-cache DB path), "cached" reuses a parked lease from the
// lock-free free list (Map.WithCached — what shard.Map and DB point ops
// use now), one CAS at each end and zero allocations on reuse.
func BenchmarkDBGet(b *testing.B) {
	ops := NewOps(IntCmp[uint64], NoAug[uint64, uint64](), 0)
	initial := make([]Entry[uint64, uint64], 100_000)
	for i := range initial {
		initial[i] = Entry[uint64, uint64]{Key: uint64(i), Val: uint64(i)}
	}
	m, err := NewMap(Config{Algorithm: "pswf", Procs: benchProcs}, ops, initial)
	if err != nil {
		b.Fatal(err)
	}
	get := func(h *Handle[uint64, uint64, struct{}], k uint64) {
		h.Read(func(s Snapshot[uint64, uint64, struct{}]) { s.Get(k) })
	}
	b.Run("lease", func(b *testing.B) {
		rng := ycsb.NewSplitMix64(10)
		for i := 0; i < b.N; i++ {
			k := rng.Next() % 100_000
			m.With(func(h *Handle[uint64, uint64, struct{}]) { get(h, k) })
		}
	})
	b.Run("cached", func(b *testing.B) {
		rng := ycsb.NewSplitMix64(10)
		for i := 0; i < b.N; i++ {
			k := rng.Next() % 100_000
			m.WithCached(func(h *Handle[uint64, uint64, struct{}]) { get(h, k) })
		}
	})
	b.Run("lease-parallel", func(b *testing.B) {
		b.RunParallel(func(pb *testing.PB) {
			rng := ycsb.NewSplitMix64(11)
			for pb.Next() {
				k := rng.Next() % 100_000
				m.With(func(h *Handle[uint64, uint64, struct{}]) { get(h, k) })
			}
		})
	})
	b.Run("cached-parallel", func(b *testing.B) {
		b.RunParallel(func(pb *testing.PB) {
			rng := ycsb.NewSplitMix64(11)
			for pb.Next() {
				k := rng.Next() % 100_000
				m.WithCached(func(h *Handle[uint64, uint64, struct{}]) { get(h, k) })
			}
		})
	})
	b.StopTimer()
	m.Close()
}

// BenchmarkDBPointOps measures the pid-free front door end to end: point
// ops lease through each shard's per-P handle cache (core.Map.WithCached),
// so this quantifies what a goroutine-per-request server sees.
func BenchmarkDBPointOps(b *testing.B) {
	initial := make([]Entry[uint64, uint64], 100_000)
	for i := range initial {
		initial[i] = Entry[uint64, uint64]{Key: uint64(i), Val: uint64(i)}
	}
	for _, shards := range []int{1, 8} {
		db, err := OpenPlainDB[uint64, uint64](DBOptions[uint64]{Shards: shards, Procs: benchProcs}, initial)
		if err != nil {
			b.Fatal(err)
		}
		b.Run(fmt.Sprintf("get/shards=%d", shards), func(b *testing.B) {
			rng := ycsb.NewSplitMix64(8)
			for i := 0; i < b.N; i++ {
				db.Get(rng.Next() % 100_000)
			}
		})
		b.Run(fmt.Sprintf("insert/shards=%d", shards), func(b *testing.B) {
			rng := ycsb.NewSplitMix64(9)
			for i := 0; i < b.N; i++ {
				db.Insert(rng.Next()%100_000, uint64(i))
			}
		})
		db.Close()
		if live := db.Live(); live != 0 {
			b.Fatalf("leaked %d nodes", live)
		}
	}
}

// BenchmarkTable3 regenerates one inverted-index co-running row: Tu, Tq
// and Tu+q, whose near-equality of Tu+Tq and Tu+q is the paper's claim.
// The "p=N" run is the paper's single index (Shards is zeroed so the
// numbers stay comparable across PRs); "p=N/S=2" is the hash-sharded
// variant's row.
func BenchmarkTable3(b *testing.B) {
	cfg := experiments.DefaultTable3()
	cfg.Threads = benchProcs
	cfg.InitialDocs = 400
	cfg.Vocab = 10_000
	cfg.Window = 300 * time.Millisecond
	row := func(b *testing.B, cfg experiments.Table3Config) {
		var tu, tq, tuq float64
		for i := 0; i < b.N; i++ {
			r := experiments.RunTable3Row(cfg, benchProcs/2)
			tu += r.Tu
			tq += r.Tq
			tuq += r.Tuq
		}
		n := float64(b.N)
		b.ReportMetric(tu/n, "Tu-sec")
		b.ReportMetric(tq/n, "Tq-sec")
		b.ReportMetric((tu+tq)/n, "Tu+Tq-sec")
		b.ReportMetric(tuq/n, "Tu+q-sec")
	}
	b.Run(fmt.Sprintf("p=%d", benchProcs/2), func(b *testing.B) {
		cfg := cfg
		cfg.Shards = 0
		row(b, cfg)
	})
	b.Run(fmt.Sprintf("p=%d/S=2", benchProcs/2), func(b *testing.B) {
		cfg := cfg
		cfg.Shards = 2
		row(b, cfg)
	})
}

// BenchmarkVMOps measures the raw acquire/release cycle and the
// acquire/set/release cycle per algorithm (Table 1's operation costs).
func BenchmarkVMOps(b *testing.B) {
	type payload struct{ x int }
	for _, name := range vm.Names() {
		b.Run("read/"+name, func(b *testing.B) {
			m := vm.New[payload](name, benchProcs, &payload{})
			for i := 0; i < b.N; i++ {
				m.Acquire(0)
				m.Release(0)
			}
		})
		b.Run("write/"+name, func(b *testing.B) {
			m := vm.New[payload](name, benchProcs, &payload{})
			for i := 0; i < b.N; i++ {
				m.Acquire(0)
				m.Set(0, &payload{x: i})
				m.Release(0)
			}
		})
	}
}

// BenchmarkAblationHelping isolates the cost/benefit of PSWF's helping
// (versus PSLF) under heavy write pressure with concurrent readers: the
// wait-free bound costs a scan of the announcement array per Set.
func BenchmarkAblationHelping(b *testing.B) {
	type payload struct{ x int }
	for _, name := range []string{"pswf", "pslf"} {
		b.Run(name, func(b *testing.B) {
			m := vm.New[payload](name, benchProcs, &payload{})
			var wg sync.WaitGroup
			stop := make(chan struct{})
			for r := 1; r < benchProcs; r++ {
				wg.Add(1)
				go func(r int) {
					defer wg.Done()
					for {
						select {
						case <-stop:
							return
						default:
						}
						m.Acquire(r)
						m.Release(r)
					}
				}(r)
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				m.Acquire(0)
				m.Set(0, &payload{x: i})
				m.Release(0)
			}
			b.StopTimer()
			close(stop)
			wg.Wait()
		})
	}
}

// BenchmarkAblationSteal measures decompose's exclusive-node fast path:
// with NoSteal, every decompose pays two extra atomic increments and a
// deferred free.
func BenchmarkAblationSteal(b *testing.B) {
	mkBatch := func(n int, seed uint64) []ftree.Entry[int64, int64] {
		rng := ycsb.NewSplitMix64(seed)
		batch := make([]ftree.Entry[int64, int64], n)
		for i := range batch {
			batch[i] = ftree.Entry[int64, int64]{Key: int64(rng.Intn(1 << 20)), Val: int64(i)}
		}
		return batch
	}
	for _, noSteal := range []bool{false, true} {
		name := "steal"
		if noSteal {
			name = "nosteal"
		}
		b.Run(name, func(b *testing.B) {
			o := ftree.New[int64, int64, int64](ftree.IntCmp[int64], ftree.SumAug[int64](), 0)
			o.NoSteal = noSteal
			root := o.MultiInsert(nil, mkBatch(100_000, 1), nil)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				nr := o.MultiInsert(root, mkBatch(1000, uint64(i)+2), nil)
				o.Release(root)
				root = nr
			}
			b.StopTimer()
			o.Release(root)
		})
	}
}

// BenchmarkAblationGrain sweeps the parallel divide-and-conquer cutoff for
// batch commits (Appendix F's parallel multi-insert).
func BenchmarkAblationGrain(b *testing.B) {
	for _, grain := range []int{0, 256, 2048, 16384} {
		b.Run(fmt.Sprintf("grain=%d", grain), func(b *testing.B) {
			o := ftree.New[int64, int64, int64](ftree.IntCmp[int64], ftree.SumAug[int64](), grain)
			rng := ycsb.NewSplitMix64(3)
			base := make([]ftree.Entry[int64, int64], 300_000)
			for i := range base {
				base[i] = ftree.Entry[int64, int64]{Key: int64(rng.Intn(1 << 30)), Val: 1}
			}
			root := o.MultiInsert(nil, base, nil)
			batch := make([]ftree.Entry[int64, int64], 50_000)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				for j := range batch {
					batch[j] = ftree.Entry[int64, int64]{Key: int64(rng.Intn(1 << 30)), Val: 2}
				}
				nr := o.MultiInsert(root, batch, nil)
				o.Release(root)
				root = nr
			}
			b.StopTimer()
			o.Release(root)
		})
	}
}

// BenchmarkAblationBatch sweeps the combiner's latency bound and measures
// the commit round-trip a sparse client observes (SubmitWait): under light
// traffic the combiner parks for up to MaxLatency between polls, so the
// bound is paid directly; under saturation (BenchmarkFigure7) it is
// irrelevant because the combiner never sleeps.
func BenchmarkAblationBatch(b *testing.B) {
	for _, lat := range []time.Duration{100 * time.Microsecond, time.Millisecond, 10 * time.Millisecond} {
		b.Run(lat.String(), func(b *testing.B) {
			ops := ftree.New[uint64, uint64, struct{}](ftree.IntCmp[uint64], ftree.NoAug[uint64, uint64](), 2048)
			m, err := core.NewMap(core.Config{Algorithm: "pswf", Procs: 2}, ops, nil)
			if err != nil {
				b.Fatal(err)
			}
			bt := batch.New(m, batch.Config{Clients: 1, BufCap: 1 << 10, MaxLatency: lat}, nil)
			bt.Start()
			rng := ycsb.NewSplitMix64(4)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				bt.SubmitWait(0, batch.Request[uint64, uint64]{Op: batch.OpInsert, Key: rng.Next() % (1 << 22), Val: 1})
			}
			b.StopTimer()
			bt.Stop()
			m.Close()
		})
	}
}

// BenchmarkReadTxn measures the end-to-end delay-free read path: acquire,
// one tree lookup, release, collect.
func BenchmarkReadTxn(b *testing.B) {
	ops := NewOps(IntCmp[int64], SumAug[int64](), 0)
	initial := make([]Entry[int64, int64], 1_000_000)
	for i := range initial {
		initial[i] = Entry[int64, int64]{Key: int64(i), Val: int64(i)}
	}
	m, err := NewMap(Config{Algorithm: "pswf", Procs: 2}, ops, initial)
	if err != nil {
		b.Fatal(err)
	}
	rng := ycsb.NewSplitMix64(5)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m.Read(0, func(s Snapshot[int64, int64, int64]) {
			s.Get(int64(rng.Intn(1_000_000)))
		})
	}
	b.StopTimer()
	m.Close()
}

// BenchmarkWriteTxn measures a solo writer's commit path: acquire, one
// path-copying insert, set, release, collect.
func BenchmarkWriteTxn(b *testing.B) {
	ops := NewOps(IntCmp[int64], SumAug[int64](), 0)
	initial := make([]Entry[int64, int64], 1_000_000)
	for i := range initial {
		initial[i] = Entry[int64, int64]{Key: int64(i), Val: int64(i)}
	}
	m, err := NewMap(Config{Algorithm: "pswf", Procs: 2}, ops, initial)
	if err != nil {
		b.Fatal(err)
	}
	rng := ycsb.NewSplitMix64(6)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m.Update(0, func(tx *Txn[int64, int64, int64]) {
			tx.Insert(int64(rng.Intn(1_000_000)), int64(i))
		})
	}
	b.StopTimer()
	m.Close()
}

// BenchmarkVersionListDelay is the paper's §1 motivation made measurable:
// in a classic version-list MVCC store (internal/vlist), a pinned
// snapshot's read of a hot key walks every version committed above it, so
// read cost grows linearly with writer progress; in this repo's design the
// same pinned snapshot reads in O(log n) regardless of how far the writer
// has advanced, because a version is a root pointer, not a list position.
func BenchmarkVersionListDelay(b *testing.B) {
	for _, depth := range []int{1, 64, 1024} {
		b.Run(fmt.Sprintf("vlist/depth=%d", depth), func(b *testing.B) {
			s := vlist.New(2, 64)
			s.Commit(map[uint64]uint64{5: 0})
			sn := s.Begin(1) // pin before the writer advances
			for i := 1; i <= depth; i++ {
				s.Commit(map[uint64]uint64{5: uint64(i)})
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if v, ok := sn.Get(5); !ok || v != 0 {
					b.Fatal("wrong snapshot read")
				}
			}
			b.StopTimer()
			sn.End()
		})
		b.Run(fmt.Sprintf("ours/depth=%d", depth), func(b *testing.B) {
			ops := NewOps(IntCmp[uint64], NoAug[uint64, uint64](), 0)
			m, err := NewMap(Config{Algorithm: "pswf", Procs: 2},
				ops, []Entry[uint64, uint64]{{Key: 5, Val: 0}})
			if err != nil {
				b.Fatal(err)
			}
			m.Read(1, func(s Snapshot[uint64, uint64, struct{}]) {
				// The writer advances `depth` versions while this
				// transaction stays pinned on the old one.
				for i := 1; i <= depth; i++ {
					m.Update(0, func(tx *Txn[uint64, uint64, struct{}]) {
						tx.Insert(5, uint64(i))
					})
				}
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					if v, ok := s.Get(5); !ok || v != 0 {
						b.Fatal("wrong snapshot read")
					}
				}
				b.StopTimer()
			})
			m.Close()
		})
	}
}

// BenchmarkAllocPointUpdate measures the Go-heap allocation cost of a
// steady-state point update (overwriting inserts, constant tree size)
// through a leased handle, recycling on (the default: pid-local magazine
// arenas) and off (the NoRecycle ablation).  Run with -benchmem: the
// "recycle" variant must report 0 B/op once the magazines are warm —
// every node comes out of the pid's arena, the Txn struct and the
// collector's buffers are pid-local and reused, and the VM's ReleaseInto
// appends into a recycled slice.  cmd/allocbench emits the same cells as
// a BENCH_alloc/v1 JSON artifact and CI diffs them across runs.
func BenchmarkAllocPointUpdate(b *testing.B) {
	for _, recycle := range []bool{true, false} {
		name := "norecycle"
		if recycle {
			name = "recycle"
		}
		b.Run(name, func(b *testing.B) {
			ops := NewOps(IntCmp[uint64], NoAug[uint64, uint64](), 0)
			initial := make([]Entry[uint64, uint64], 100_000)
			for i := range initial {
				initial[i] = Entry[uint64, uint64]{Key: uint64(i), Val: uint64(i)}
			}
			m, err := NewMap(Config{Algorithm: "pswf", Procs: 2, NoRecycle: !recycle}, ops, initial)
			if err != nil {
				b.Fatal(err)
			}
			rng := ycsb.NewSplitMix64(12)
			var k, v uint64
			f := func(tx *Txn[uint64, uint64, struct{}]) { tx.Insert(k, v) }
			for i := 0; i < 10_000; i++ { // warm the magazines
				k, v = rng.Next()%100_000, uint64(i)
				m.Update(0, f)
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				k, v = rng.Next()%100_000, uint64(i)
				m.Update(0, f)
			}
			b.StopTimer()
			m.Close()
		})
	}
}

// BenchmarkAllocBatchCommit measures the allocation cost of one combining
// commit of a 1000-entry batch (the Appendix F write path) with the
// arena's block Reserve on and off the recycling default.  Run with
// -benchmem; B/op here is per batch, not per entry.
func BenchmarkAllocBatchCommit(b *testing.B) {
	const batchN = 1000
	for _, recycle := range []bool{true, false} {
		name := "norecycle"
		if recycle {
			name = "recycle"
		}
		b.Run(name, func(b *testing.B) {
			ops := NewOps(IntCmp[uint64], NoAug[uint64, uint64](), 2048)
			initial := make([]Entry[uint64, uint64], 100_000)
			for i := range initial {
				initial[i] = Entry[uint64, uint64]{Key: uint64(i), Val: uint64(i)}
			}
			m, err := core.NewMap(core.Config{Algorithm: "pswf", Procs: 2, NoRecycle: !recycle}, ops, initial)
			if err != nil {
				b.Fatal(err)
			}
			w := m.Handle()
			rng := ycsb.NewSplitMix64(13)
			entries := make([]Entry[uint64, uint64], batchN)
			fill := func() {
				for i := range entries {
					entries[i] = Entry[uint64, uint64]{Key: rng.Next() % 100_000, Val: uint64(i)}
				}
			}
			commit := func() {
				// No explicit ReserveNodes: MultiInsert self-reserves, so
				// this measures the default InsertBatch path.
				w.Update(func(tx *core.Txn[uint64, uint64, struct{}]) { tx.InsertBatch(entries, nil) })
			}
			for i := 0; i < 5; i++ { // warm
				fill()
				commit()
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				b.StopTimer()
				fill()
				b.StartTimer()
				commit()
			}
			b.StopTimer()
			w.Close()
			m.Close()
		})
	}
}

// BenchmarkScanWarm measures the steady-state cross-shard scan: 100
// entries per op off a snapshot pinned once outside the timed loop,
// streamed through the pooled loser-tree merge into a reused append
// buffer.  Run with -benchmem: warm scans must report 0 B/op — the merge
// state (iterator stacks, tournament slice) comes from the Map's pool and
// the results land in the caller's buffer.  cmd/allocbench emits the same
// cell ("scan-warm") into BENCH_alloc/v1 and CI gates it absolutely.
func BenchmarkScanWarm(b *testing.B) {
	for _, shards := range []int{1, 8} {
		b.Run(fmt.Sprintf("shards=%d", shards), func(b *testing.B) {
			initial := make([]ftree.Entry[uint64, uint64], 100_000)
			for i := range initial {
				initial[i] = ftree.Entry[uint64, uint64]{Key: uint64(i), Val: uint64(i)}
			}
			sm, err := shard.New(
				shard.Config[uint64]{Shards: shards, Procs: 2, Hash: ycsb.Mix64},
				func() *ftree.Ops[uint64, uint64, struct{}] {
					return ftree.New[uint64, uint64, struct{}](ftree.IntCmp[uint64], ftree.NoAug[uint64, uint64](), 0)
				},
				initial,
			)
			if err != nil {
				b.Fatal(err)
			}
			rng := ycsb.NewSplitMix64(14)
			var buf []ftree.Entry[uint64, uint64]
			sm.View(func(s shard.Snap[uint64, uint64, struct{}]) {
				for i := 0; i < 1000; i++ { // warm the scan-state pool
					buf = s.ScanAppend(buf[:0], rng.Next()%100_000, 100)
				}
			})
			b.ReportAllocs()
			b.ResetTimer()
			sm.View(func(s shard.Snap[uint64, uint64, struct{}]) {
				for i := 0; i < b.N; i++ {
					buf = s.ScanAppend(buf[:0], rng.Next()%100_000, 100)
				}
			})
			b.StopTimer()
			sm.Close()
		})
	}
}

// BenchmarkAblationRecycle compares freed-node recycling against fresh
// allocation on a churn-heavy single-writer workload, where every commit
// frees roughly as many nodes as it allocates.
func BenchmarkAblationRecycle(b *testing.B) {
	for _, recycle := range []bool{false, true} {
		name := "fresh-alloc"
		if recycle {
			name = "recycle"
		}
		b.Run(name, func(b *testing.B) {
			o := ftree.New[int64, int64, int64](ftree.IntCmp[int64], ftree.SumAug[int64](), 0)
			o.Recycle = recycle
			rng := ycsb.NewSplitMix64(7)
			var root *ftree.Node[int64, int64, int64]
			for i := 0; i < 100_000; i++ {
				nr := o.Insert(root, int64(rng.Intn(1<<20)), 1)
				o.Release(root)
				root = nr
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				nr := o.Insert(root, int64(rng.Intn(1<<20)), 2)
				o.Release(root)
				root = nr
			}
			b.StopTimer()
			o.Release(root)
		})
	}
}

package mvgc_test

import (
	"runtime"
	"strings"
	"sync"
	"testing"

	"mvgc"
)

// TestDBNoPidAnywhere is the acceptance property of the DB front door: an
// arbitrary number of goroutines run transactions with no pid in sight,
// and per-shard precise GC still reports zero leaks at Close.
func TestDBNoPidAnywhere(t *testing.T) {
	db, err := mvgc.OpenPlainDB[uint64, uint64](mvgc.DBOptions[uint64]{Shards: 4, Procs: 4}, nil)
	if err != nil {
		t.Fatal(err)
	}
	const goroutines, iters = 16, 300
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < iters; i++ {
				k := uint64(g*iters + i)
				db.Update(func(tx *mvgc.DBTxn[uint64, uint64, struct{}]) {
					tx.Insert(k, k*2)
				})
				db.View(func(s mvgc.DBSnapshot[uint64, uint64, struct{}]) {
					if v, ok := s.Get(k); !ok || v != k*2 {
						t.Errorf("Get(%d) = %d,%v", k, v, ok)
					}
				})
			}
		}(g)
	}
	wg.Wait()
	if n := db.Len(); n != goroutines*iters {
		t.Fatalf("Len = %d, want %d", n, goroutines*iters)
	}
	db.Close()
	if live := db.Live(); live != 0 {
		t.Fatalf("leaked %d nodes", live)
	}
}

// TestDBAtomicModes covers the global-commit surface of the front door:
// UpdateAtomic + ViewConsistent round-trips with a GSN vector, the
// AtomicDefault option rerouting Update/View, and UpdateAtomicKeys driving
// a multi-key compare-and-swap.
func TestDBAtomicModes(t *testing.T) {
	db, err := mvgc.OpenPlainDB[uint64, int64](mvgc.DBOptions[uint64]{Shards: 4, Procs: 3}, nil)
	if err != nil {
		t.Fatal(err)
	}
	// Two keys on different shards.
	a := uint64(1)
	b := a + 1
	for db.ShardFor(b) == db.ShardFor(a) {
		b++
	}
	db.UpdateAtomic(func(tx *mvgc.DBTxn[uint64, int64, struct{}]) {
		tx.Insert(a, 100)
		tx.Insert(b, 200)
	})
	db.ViewConsistent(func(s mvgc.DBSnapshot[uint64, int64, struct{}]) {
		if !s.Consistent() {
			t.Error("ViewConsistent snap does not claim consistency")
		}
		g := s.GSNs()
		if len(g) != db.NumShards() {
			t.Fatalf("GSNs length = %d, want %d", len(g), db.NumShards())
		}
		if g[db.ShardFor(a)] == 0 || g[db.ShardFor(b)] == 0 {
			t.Errorf("touched shards report zero GSN: %v", g)
		}
		if va, _ := s.Get(a); va != 100 {
			t.Errorf("a = %d, want 100", va)
		}
	})
	db.View(func(s mvgc.DBSnapshot[uint64, int64, struct{}]) {
		if s.Consistent() || s.GSNs() != nil {
			t.Error("plain View snap claims consistency")
		}
	})

	// Multi-key CAS on UpdateAtomicKeys: applies when expectations hold,
	// leaves both keys untouched when any is stale.
	cas := func(ka, kb uint64, expA, expB, newA, newB int64) bool {
		ok := false
		db.UpdateAtomicKeys([]uint64{ka, kb}, func(tx *mvgc.DBTxn[uint64, int64, struct{}]) {
			if va, has := tx.Get(ka); !has || va != expA {
				return
			}
			if vb, has := tx.Get(kb); !has || vb != expB {
				return
			}
			ok = true
			tx.Insert(ka, newA)
			tx.Insert(kb, newB)
		})
		return ok
	}
	if !cas(a, b, 100, 200, 101, 201) {
		t.Fatal("matching CAS failed")
	}
	if cas(a, b, 100, 201, 999, 999) {
		t.Fatal("stale CAS applied")
	}
	if va, _ := db.Get(a); va != 101 {
		t.Fatalf("a = %d after CAS round, want 101", va)
	}
	db.Close()
	if live := db.Live(); live != 0 {
		t.Fatalf("leaked %d nodes", live)
	}

	// AtomicDefault: plain Update/View become the global-commit forms.
	adb, err := mvgc.OpenPlainDB[uint64, int64](mvgc.DBOptions[uint64]{Shards: 2, Procs: 2, AtomicDefault: true}, nil)
	if err != nil {
		t.Fatal(err)
	}
	adb.Update(func(tx *mvgc.DBTxn[uint64, int64, struct{}]) { tx.Insert(1, 1); tx.Insert(2, 2) })
	adb.View(func(s mvgc.DBSnapshot[uint64, int64, struct{}]) {
		if !s.Consistent() {
			t.Error("AtomicDefault View is not consistent")
		}
	})
	adb.Close()
	if live := adb.Live(); live != 0 {
		t.Fatalf("AtomicDefault db leaked %d nodes", live)
	}
}

// TestDBScan covers the front door's ordered-read surface: Scan and
// RangeFunc merge all shards in global key order, and the snapshot-level
// streaming forms (ScanFunc, ScanAppend, ForEachCond) expose early exit
// and buffer reuse.
func TestDBScan(t *testing.T) {
	db, err := mvgc.OpenPlainDB[uint64, uint64](mvgc.DBOptions[uint64]{Shards: 4, Procs: 3}, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	const n = 500
	for k := uint64(0); k < n; k++ {
		db.Insert(k, k*3)
	}
	got := db.Scan(100, 50)
	if len(got) != 50 {
		t.Fatalf("Scan returned %d entries, want 50", len(got))
	}
	for i, e := range got {
		if e.Key != uint64(100+i) || e.Val != e.Key*3 {
			t.Fatalf("Scan[%d] = %d:%d", i, e.Key, e.Val)
		}
	}
	if tail := db.Scan(n-10, 100); len(tail) != 10 {
		t.Fatalf("tail Scan returned %d entries, want 10", len(tail))
	}
	visited := 0
	if !db.RangeFunc(10, 19, func(k, v uint64) bool {
		if k != uint64(10+visited) {
			t.Fatalf("RangeFunc out of order at %d: %d", visited, k)
		}
		visited++
		return true
	}) {
		t.Fatal("RangeFunc reported early stop")
	}
	if visited != 10 {
		t.Fatalf("RangeFunc visited %d, want 10", visited)
	}
	if db.RangeFunc(0, n, func(k, v uint64) bool { return k < 5 }) {
		t.Fatal("early-stopped RangeFunc reported completion")
	}
	db.View(func(s mvgc.DBSnapshot[uint64, uint64, struct{}]) {
		if m := s.ScanFunc(0, 7, func(k, v uint64) bool { return true }); m != 7 {
			t.Fatalf("ScanFunc visited %d, want 7", m)
		}
		buf := make([]mvgc.Entry[uint64, uint64], 0, 32)
		buf = s.ScanAppend(buf, 0, 20)
		if len(buf) != 20 || buf[19].Key != 19 {
			t.Fatalf("ScanAppend = %d entries, last %v", len(buf), buf[len(buf)-1])
		}
		count := 0
		if s.ForEachCond(func(k, v uint64) bool { count++; return count < 3 }) {
			t.Fatal("ForEachCond reported completion despite early stop")
		}
		if count != 3 {
			t.Fatalf("ForEachCond visited %d, want 3", count)
		}
	})
}

// TestDBForEachChunked covers the bounded-staleness front door on both
// consistency settings: the full key set streams in order through the
// chunked re-pinning walk, and early exit reports non-completion.
func TestDBForEachChunked(t *testing.T) {
	for _, atomicDefault := range []bool{false, true} {
		db, err := mvgc.OpenPlainDB[uint64, uint64](
			mvgc.DBOptions[uint64]{Shards: 4, Procs: 3, AtomicDefault: atomicDefault}, nil)
		if err != nil {
			t.Fatal(err)
		}
		const n = 300
		for k := uint64(0); k < n; k++ {
			db.Insert(k, k+1)
		}
		visited := uint64(0)
		if !db.ForEachChunked(32, func(k, v uint64) bool {
			if k != visited || v != k+1 {
				t.Fatalf("atomic=%v: got %d:%d at position %d", atomicDefault, k, v, visited)
			}
			visited++
			return true
		}) {
			t.Fatalf("atomic=%v: chunked walk did not complete", atomicDefault)
		}
		if visited != n {
			t.Fatalf("atomic=%v: visited %d keys, want %d", atomicDefault, visited, n)
		}
		count := 0
		if db.ForEachChunked(10, func(k, v uint64) bool { count++; return count < 15 }) {
			t.Fatalf("atomic=%v: stopped walk reported completion", atomicDefault)
		}
		db.Close()
		if live := db.Live(); live != 0 {
			t.Fatalf("atomic=%v: leaked %d nodes", atomicDefault, live)
		}
	}
}

// TestDBAugmented: cross-shard AugRange combines per-shard range sums.
func TestDBAugmented(t *testing.T) {
	var initial []mvgc.Entry[int64, int64]
	for i := int64(1); i <= 100; i++ {
		initial = append(initial, mvgc.Entry[int64, int64]{Key: i, Val: i})
	}
	db, err := mvgc.OpenDB[int64, int64, int64](mvgc.DBOptions[int64]{Shards: 3, Procs: 2}, mvgc.SumAug[int64](), initial)
	if err != nil {
		t.Fatal(err)
	}
	db.View(func(s mvgc.DBSnapshot[int64, int64, int64]) {
		if sum := s.AugRange(1, 100); sum != 5050 {
			t.Fatalf("AugRange(1,100) = %d, want 5050", sum)
		}
		if sum := s.AugRange(10, 20); sum != 165 {
			t.Fatalf("AugRange(10,20) = %d, want 165", sum)
		}
		es := s.Range(95, 200)
		if len(es) != 6 {
			t.Fatalf("Range(95,200) = %d entries", len(es))
		}
		for i, e := range es {
			if e.Key != int64(95+i) {
				t.Fatalf("Range unordered: %v", es)
			}
		}
	})
	db.Close()
	if live := db.Live(); live != 0 {
		t.Fatalf("leaked %d nodes", live)
	}
}

// TestDBStringKeys exercises the built-in string hash and ordering.
func TestDBStringKeys(t *testing.T) {
	db, err := mvgc.OpenPlainDB[string, int](mvgc.DBOptions[string]{Shards: 2, Procs: 2}, nil)
	if err != nil {
		t.Fatal(err)
	}
	words := []string{"pear", "apple", "mango", "fig", "banana"}
	for i, w := range words {
		db.Insert(w, i)
	}
	var got []string
	db.View(func(s mvgc.DBSnapshot[string, int, struct{}]) {
		s.ForEach(func(k string, _ int) { got = append(got, k) })
	})
	want := []string{"apple", "banana", "fig", "mango", "pear"}
	if len(got) != len(want) {
		t.Fatalf("ForEach visited %v", got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("global order broken: %v", got)
		}
	}
	db.Close()
	if live := db.Live(); live != 0 {
		t.Fatalf("leaked %d nodes", live)
	}
}

// TestOpenDBValidation: option errors surface instead of panicking later.
func TestOpenDBValidation(t *testing.T) {
	if _, err := mvgc.OpenDB[int64, int64, int64](mvgc.DBOptions[int64]{}, nil, nil); err == nil {
		t.Fatal("nil augmenter accepted")
	}
	if _, err := mvgc.OpenPlainDB[int64, int64](mvgc.DBOptions[int64]{Algorithm: "bogus"}, nil); err == nil {
		t.Fatal("bogus algorithm accepted")
	}
	// Key types without a built-in hash/ordering must error, not panic.
	if _, err := mvgc.OpenPlainDB[[2]int, int](mvgc.DBOptions[[2]int]{}, nil); err == nil {
		t.Fatal("unsupported key type accepted without Hash/Cmp")
	}
}

// roundTripKeys proves one key type works end to end with zero-value
// DBOptions: the built-in autoHash routes keys to shards and the built-in
// autoCmp keeps the global iteration order sorted.
func roundTripKeys[K int | int32 | int64 | uint | uint32 | uint64](t *testing.T, mk func(i int) K) {
	t.Helper()
	db, err := mvgc.OpenPlainDB[K, int](mvgc.DBOptions[K]{Shards: 3, Procs: 2}, nil)
	if err != nil {
		t.Fatal(err)
	}
	const n = 200
	for i := 0; i < n; i++ {
		db.Insert(mk(i), i)
	}
	for i := 0; i < n; i++ {
		if v, ok := db.Get(mk(i)); !ok || v != i {
			t.Fatalf("Get(%v) = %d,%v want %d", mk(i), v, ok, i)
		}
	}
	var visited int
	var prev K
	db.View(func(s mvgc.DBSnapshot[K, int, struct{}]) {
		s.ForEach(func(k K, _ int) {
			if visited > 0 && k <= prev {
				t.Fatalf("iteration order broken: %v after %v", k, prev)
			}
			prev, visited = k, visited+1
		})
	})
	if visited != n {
		t.Fatalf("ForEach visited %d keys, want %d", visited, n)
	}
	db.Close()
	if live := db.Live(); live != 0 {
		t.Fatalf("leaked %d nodes", live)
	}
}

// TestAutoHashCmpRoundTrip covers every key type autoHash/autoCmp support
// (strings are covered by TestDBStringKeys).
func TestAutoHashCmpRoundTrip(t *testing.T) {
	t.Run("int", func(t *testing.T) { roundTripKeys(t, func(i int) int { return (i - 100) * 3 }) })
	t.Run("int32", func(t *testing.T) { roundTripKeys(t, func(i int) int32 { return int32(i-100) * 7 }) })
	t.Run("int64", func(t *testing.T) { roundTripKeys(t, func(i int) int64 { return int64(i-100) * 11 }) })
	t.Run("uint", func(t *testing.T) { roundTripKeys(t, func(i int) uint { return uint(i)*13 + 1 }) })
	t.Run("uint32", func(t *testing.T) { roundTripKeys(t, func(i int) uint32 { return uint32(i)*17 + 1 }) })
	t.Run("uint64", func(t *testing.T) { roundTripKeys(t, func(i int) uint64 { return uint64(i)*19 + 1 }) })
}

// TestAutoHashCmpUnsupported pins the documented errors for key types
// without built-in hashing or ordering.
func TestAutoHashCmpUnsupported(t *testing.T) {
	// No Hash, unsupported kind → the autoHash error.
	_, err := mvgc.OpenPlainDB[float64, int](mvgc.DBOptions[float64]{}, nil)
	if err == nil || !strings.Contains(err.Error(), "DBOptions.Hash is required") {
		t.Fatalf("float64 keys without Hash: err = %v", err)
	}
	// Hash supplied but no Cmp, unsupported kind → the autoCmp error.
	_, err = mvgc.OpenPlainDB[float64, int](mvgc.DBOptions[float64]{
		Hash: func(k float64) uint64 { return uint64(k) },
	}, nil)
	if err == nil || !strings.Contains(err.Error(), "DBOptions.Cmp is required") {
		t.Fatalf("float64 keys without Cmp: err = %v", err)
	}
	// Both supplied → the key type is fine after all.
	db, err := mvgc.OpenPlainDB[float64, int](mvgc.DBOptions[float64]{
		Shards: 2, Procs: 2,
		Hash: func(k float64) uint64 { return uint64(k * 8) },
		Cmp: func(a, b float64) int {
			switch {
			case a < b:
				return -1
			case a > b:
				return 1
			}
			return 0
		},
	}, nil)
	if err != nil {
		t.Fatal(err)
	}
	db.Insert(1.5, 10)
	if v, ok := db.Get(1.5); !ok || v != 10 {
		t.Fatalf("Get(1.5) = %d,%v", v, ok)
	}
	db.Close()
}

// TestDBPointOpContention hammers the cached-handle fast path the way a
// goroutine-per-request server would: GOMAXPROCS×4 goroutines of mixed
// point ops per shard count.  The no-double-lease property itself is
// asserted at the core layer (TestWithCachedNoDoubleLease); here the
// observable contract is checked end to end — every committed write is
// readable and per-shard precise GC reports zero leaks — under -race.
func TestDBPointOpContention(t *testing.T) {
	goroutines := runtime.GOMAXPROCS(0) * 4
	const iters = 500
	for _, shards := range []int{1, 4} {
		db, err := mvgc.OpenPlainDB[uint64, uint64](mvgc.DBOptions[uint64]{Shards: shards, Procs: 4}, nil)
		if err != nil {
			t.Fatal(err)
		}
		var wg sync.WaitGroup
		for g := 0; g < goroutines; g++ {
			wg.Add(1)
			go func(g int) {
				defer wg.Done()
				for i := 0; i < iters; i++ {
					k := uint64(g*iters + i)
					switch i % 4 {
					// Keys are per-goroutine, so each goroutine sees its own
					// ops in order: the i%4==0 insert must be visible at
					// i%4==2, and the i%4==1 insert really exists when the
					// i%4==3 delete removes it.
					case 0, 1:
						db.Insert(k, k+1)
					case 2:
						if v, ok := db.Get(k - 2); !ok || v != k-1 {
							t.Errorf("Get(%d) = %d,%v want %d", k-2, v, ok, k-1)
						}
					case 3:
						db.Delete(k - 2)
					}
				}
			}(g)
		}
		wg.Wait()
		for g := 0; g < goroutines; g++ {
			ins := uint64(g * iters) // i%4==0: inserted, never deleted
			if v, ok := db.Get(ins); !ok || v != ins+1 {
				t.Errorf("shards=%d: Get(%d) = %d,%v want %d", shards, ins, v, ok, ins+1)
			}
			del := uint64(g*iters + 1) // i%4==1: inserted, then deleted at i%4==3
			if v, ok := db.Get(del); ok {
				t.Errorf("shards=%d: Get(%d) = %d, want deleted", shards, del, v)
			}
		}
		db.Close()
		if live := db.Live(); live != 0 {
			t.Fatalf("shards=%d: leaked %d nodes", shards, live)
		}
	}
}

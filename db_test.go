package mvgc_test

import (
	"sync"
	"testing"

	"mvgc"
)

// TestDBNoPidAnywhere is the acceptance property of the DB front door: an
// arbitrary number of goroutines run transactions with no pid in sight,
// and per-shard precise GC still reports zero leaks at Close.
func TestDBNoPidAnywhere(t *testing.T) {
	db, err := mvgc.OpenPlainDB[uint64, uint64](mvgc.DBOptions[uint64]{Shards: 4, Procs: 4}, nil)
	if err != nil {
		t.Fatal(err)
	}
	const goroutines, iters = 16, 300
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < iters; i++ {
				k := uint64(g*iters + i)
				db.Update(func(tx *mvgc.DBTxn[uint64, uint64, struct{}]) {
					tx.Insert(k, k*2)
				})
				db.View(func(s mvgc.DBSnapshot[uint64, uint64, struct{}]) {
					if v, ok := s.Get(k); !ok || v != k*2 {
						t.Errorf("Get(%d) = %d,%v", k, v, ok)
					}
				})
			}
		}(g)
	}
	wg.Wait()
	if n := db.Len(); n != goroutines*iters {
		t.Fatalf("Len = %d, want %d", n, goroutines*iters)
	}
	db.Close()
	if live := db.Live(); live != 0 {
		t.Fatalf("leaked %d nodes", live)
	}
}

// TestDBAugmented: cross-shard AugRange combines per-shard range sums.
func TestDBAugmented(t *testing.T) {
	var initial []mvgc.Entry[int64, int64]
	for i := int64(1); i <= 100; i++ {
		initial = append(initial, mvgc.Entry[int64, int64]{Key: i, Val: i})
	}
	db, err := mvgc.OpenDB[int64, int64, int64](mvgc.DBOptions[int64]{Shards: 3, Procs: 2}, mvgc.SumAug[int64](), initial)
	if err != nil {
		t.Fatal(err)
	}
	db.View(func(s mvgc.DBSnapshot[int64, int64, int64]) {
		if sum := s.AugRange(1, 100); sum != 5050 {
			t.Fatalf("AugRange(1,100) = %d, want 5050", sum)
		}
		if sum := s.AugRange(10, 20); sum != 165 {
			t.Fatalf("AugRange(10,20) = %d, want 165", sum)
		}
		es := s.Range(95, 200)
		if len(es) != 6 {
			t.Fatalf("Range(95,200) = %d entries", len(es))
		}
		for i, e := range es {
			if e.Key != int64(95+i) {
				t.Fatalf("Range unordered: %v", es)
			}
		}
	})
	db.Close()
	if live := db.Live(); live != 0 {
		t.Fatalf("leaked %d nodes", live)
	}
}

// TestDBStringKeys exercises the built-in string hash and ordering.
func TestDBStringKeys(t *testing.T) {
	db, err := mvgc.OpenPlainDB[string, int](mvgc.DBOptions[string]{Shards: 2, Procs: 2}, nil)
	if err != nil {
		t.Fatal(err)
	}
	words := []string{"pear", "apple", "mango", "fig", "banana"}
	for i, w := range words {
		db.Insert(w, i)
	}
	var got []string
	db.View(func(s mvgc.DBSnapshot[string, int, struct{}]) {
		s.ForEach(func(k string, _ int) { got = append(got, k) })
	})
	want := []string{"apple", "banana", "fig", "mango", "pear"}
	if len(got) != len(want) {
		t.Fatalf("ForEach visited %v", got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("global order broken: %v", got)
		}
	}
	db.Close()
	if live := db.Live(); live != 0 {
		t.Fatalf("leaked %d nodes", live)
	}
}

// TestOpenDBValidation: option errors surface instead of panicking later.
func TestOpenDBValidation(t *testing.T) {
	if _, err := mvgc.OpenDB[int64, int64, int64](mvgc.DBOptions[int64]{}, nil, nil); err == nil {
		t.Fatal("nil augmenter accepted")
	}
	if _, err := mvgc.OpenPlainDB[int64, int64](mvgc.DBOptions[int64]{Algorithm: "bogus"}, nil); err == nil {
		t.Fatal("bogus algorithm accepted")
	}
	// Key types without a built-in hash/ordering must error, not panic.
	if _, err := mvgc.OpenPlainDB[[2]int, int](mvgc.DBOptions[[2]int]{}, nil); err == nil {
		t.Fatal("unsupported key type accepted without Hash/Cmp")
	}
}

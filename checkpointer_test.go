package mvgc_test

import (
	"testing"
	"time"

	"mvgc"
	"mvgc/internal/wal"
)

// TestCheckpointerBoundsLog is the checkpoint-scheduling acceptance test:
// under a sustained write storm, the background checkpointer keeps the
// log's live bytes under 2x CheckpointBytes — the directory footprint
// (and the prefix a replication follower must bootstrap) stays bounded
// no matter how long the storm runs.
func TestCheckpointerBoundsLog(t *testing.T) {
	const (
		ckptBytes = 256 << 10
		segBytes  = 32 << 10
	)
	mem := wal.NewMemFS()
	db, err := mvgc.OpenPlainDB[uint64, uint64](mvgc.DBOptions[uint64]{
		Shards: 4, Procs: 4,
		WAL: &mvgc.WALOptions{
			Dir: "wal", FS: mem,
			SegmentBytes:    segBytes,
			CheckpointBytes: ckptBytes,
			CheckpointAge:   4 * time.Millisecond, // poll at the 1ms floor
		},
	}, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()

	// Storm: ~2 MiB of log appends (far past the bound), paced so the
	// MemFS cannot outrun the checkpointer by more than a poll's worth —
	// the bound is on scheduling, not on beating an in-memory disk in a
	// footrace.
	var peak int64
	start := db.WALStats().Appended
	for i := uint64(0); db.WALStats().Appended-start < 2<<20; i++ {
		if err := db.Insert(i%512, i); err != nil {
			t.Fatal(err)
		}
		if i%128 == 127 {
			time.Sleep(500 * time.Microsecond)
		}
		if live := db.WALStats().LiveBytes; live > peak {
			peak = live
		}
	}
	st := db.WALStats()
	if st.SnapshotCut == 0 {
		t.Fatal("checkpointer never ran during the storm")
	}
	if peak >= 2*ckptBytes {
		t.Fatalf("live log peaked at %d bytes, want < %d (2x CheckpointBytes)", peak, 2*ckptBytes)
	}
	t.Logf("storm: appended %d bytes total, live peaked at %d (bound %d), cut %d",
		st.Appended-start, peak, 2*ckptBytes, st.SnapshotCut)
}

// TestCheckpointerIdleNoChurn: an idle database is never re-snapshotted —
// the age trigger requires appended growth, so a quiet log costs zero
// filesystem traffic.
func TestCheckpointerIdleNoChurn(t *testing.T) {
	mem := wal.NewMemFS()
	ffs := wal.NewFaultFS(mem)
	db, err := mvgc.OpenPlainDB[uint64, uint64](mvgc.DBOptions[uint64]{
		Shards: 2,
		WAL: &mvgc.WALOptions{
			Dir: "wal", FS: ffs,
			CheckpointAge: 2 * time.Millisecond,
		},
	}, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()

	for i := uint64(0); i < 64; i++ {
		if err := db.Insert(i, i); err != nil {
			t.Fatal(err)
		}
	}
	// Wait for the age trigger to fold the writes into a snapshot.
	deadline := time.Now().Add(5 * time.Second)
	for db.WALStats().SnapshotCut == 0 {
		if time.Now().After(deadline) {
			t.Fatal("age-triggered checkpoint never happened")
		}
		time.Sleep(time.Millisecond)
	}
	// Idle: no appends => no further checkpoints => no filesystem ops.
	ops := ffs.Ops()
	time.Sleep(25 * time.Millisecond)
	if got := ffs.Ops(); got != ops {
		t.Fatalf("idle checkpointer did %d filesystem ops", got-ops)
	}
}

// Package mvgc is a multiversion concurrency system with bounded delay and
// precise garbage collection — a Go implementation of Ben-David, Blelloch,
// Sun and Wei (SPAA 2019).
//
// The package provides a transactional, multiversioned ordered map built
// from purely functional weight-balanced trees and a wait-free Version
// Maintenance algorithm:
//
//   - Read transactions are delay-free: they acquire a snapshot in O(1)
//     and run unmodified tree code against it, never blocking writers and
//     never blocked by them.
//   - A solo write transaction commits with O(P) delay; concurrent writers
//     are lock-free (a failed commit implies another writer succeeded).
//   - Garbage collection is precise: every version is collected the moment
//     its last transaction releases it, in time linear in the garbage.
//
// There are two entry points.  NewMap is the paper-faithful single
// structure (see examples/quickstart); goroutine-per-request servers that
// do not want to manage process ids should use OpenDB/OpenPlainDB, the
// sharded pid-free front door (see examples/kvserver).  The batching layer
// (Appendix F of the paper) lives in internal/batch, the sharding layer in
// internal/shard, alternative version-maintenance algorithms (hazard
// pointers, epochs, RCU) in internal/vm, and the evaluation harness in
// internal/experiments and the cmd/ binaries.
package mvgc

import (
	"mvgc/internal/core"
	"mvgc/internal/ftree"
)

// Map is a multiversion transactional ordered map; see core.Map.
type Map[K, V, A any] = core.Map[K, V, A]

// Snapshot is an immutable read view of one version.
type Snapshot[K, V, A any] = core.Snapshot[K, V, A]

// Txn is the handle write transactions mutate through.
type Txn[K, V, A any] = core.Txn[K, V, A]

// Handle is a leased process identity on a Map: it owns a pid from the
// map's pool and forwards Read/Update to it, so callers never thread pids
// by hand.  Lease with Map.Handle or scoped Map.With; see core.Handle.
type Handle[K, V, A any] = core.Handle[K, V, A]

// Config selects the Version Maintenance algorithm ("pswf" by default)
// and the number of processes.  Node recycling through pid-local arenas
// is on by default; Config.NoRecycle is the ablation switch.
type Config = core.Config

// Ops bundles ordering, augmentation and allocation accounting for a
// family of functional trees.
type Ops[K, V, A any] = ftree.Ops[K, V, A]

// Entry is a key-value pair for batch operations.
type Entry[K, V any] = ftree.Entry[K, V]

// Augmenter defines subtree augmentation; see ftree.Augmenter.
type Augmenter[K, V, A any] = ftree.Augmenter[K, V, A]

// NewOps returns tree operations for the given comparison and augmenter;
// grain is the parallel divide-and-conquer cutoff (0 = sequential).
func NewOps[K, V, A any](cmp func(a, b K) int, aug Augmenter[K, V, A], grain int) *Ops[K, V, A] {
	return ftree.New(cmp, aug, grain)
}

// NewMap creates a transactional multiversion map whose first version
// holds the given entries.
func NewMap[K, V, A any](cfg Config, ops *Ops[K, V, A], initial []Entry[K, V]) (*Map[K, V, A], error) {
	return core.NewMap(cfg, ops, initial)
}

// IntCmp is a ready-made three-way comparison for integer keys.
func IntCmp[T ~int | ~int32 | ~int64 | ~uint | ~uint32 | ~uint64](a, b T) int {
	return ftree.IntCmp(a, b)
}

// NoAug is the trivial augmenter for plain maps.
func NoAug[K, V any]() Augmenter[K, V, struct{}] { return ftree.NoAug[K, V]() }

// SumAug augments with the sum of int64 values (range-sum queries).
func SumAug[K any]() Augmenter[K, int64, int64] { return ftree.SumAug[K]() }

// MaxAug augments with the maximum int64 value (top-k queries).
func MaxAug[K any]() Augmenter[K, int64, int64] { return ftree.MaxAug[K]() }
